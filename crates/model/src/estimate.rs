//! Estimators for intermediate tensor sizes.
//!
//! Every candidate dimension-tree node over mode set `S` has as many
//! elements as the input tensor has distinct projections onto `S`. The
//! planner evaluates hundreds of candidate nodes, so it needs this count
//! *cheaply*. Three estimators with different cost/fidelity trades:
//!
//! * **Exact** — sort-based distinct count, `O(nnz log nnz)` per subset.
//!   The oracle; used by tests and small planning problems.
//! * **Sampled** — distinct count over a fixed-size coordinate sample,
//!   scaled up with a bias-corrected Chao1 richness estimator. `O(sample
//!   log sample)` per subset regardless of nnz; the default for planning.
//! * **Analytic** — the uniform-occupancy closed form
//!   `M (1 - (1 - 1/M)^nnz)`, `O(1)` per subset. Exact in expectation for
//!   uniform random tensors; a lower bound on collapse for skewed ones.
//!
//! All estimates are clamped to the hard bounds
//! `[1, min(nnz, prod_{d in S} I_d)]`.

use adatm_tensor::stats::distinct_projections;
use adatm_tensor::SparseTensor;
use std::collections::HashMap;

/// Strategy for estimating distinct projection counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NnzEstimator {
    /// Exact sort-based count.
    Exact,
    /// Chao-corrected count over a sample of the given size.
    Sampled {
        /// Number of coordinates sampled (deterministic stride sample).
        sample: usize,
    },
    /// Uniform-occupancy closed form (no data access beyond nnz/dims).
    Analytic,
}

impl Default for NnzEstimator {
    fn default() -> Self {
        NnzEstimator::Sampled { sample: 1 << 14 }
    }
}

/// A memoizing evaluator binding an estimator to one tensor.
///
/// The planner asks for the same subsets repeatedly (the DP shares
/// intervals across candidate trees); the cache makes each subset cost
/// one evaluation.
pub struct EstimatorCache<'a> {
    tensor: &'a SparseTensor,
    estimator: NnzEstimator,
    cache: HashMap<Vec<usize>, f64>,
    /// Number of estimator evaluations that missed the cache, for
    /// reporting planning cost.
    pub misses: usize,
}

impl<'a> EstimatorCache<'a> {
    /// Creates a cache over `tensor` with the given strategy.
    pub fn new(tensor: &'a SparseTensor, estimator: NnzEstimator) -> Self {
        EstimatorCache { tensor, estimator, cache: HashMap::new(), misses: 0 }
    }

    /// Estimated distinct projections of the tensor onto `modes`
    /// (sorted internally; order does not matter).
    pub fn elems(&mut self, modes: &[usize]) -> f64 {
        let mut key: Vec<usize> = modes.to_vec();
        key.sort_unstable();
        if key.len() == self.tensor.ndim() {
            return self.tensor.nnz() as f64;
        }
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        self.misses += 1;
        let v = estimate(self.tensor, &key, self.estimator);
        self.cache.insert(key, v);
        v
    }
}

/// One-shot estimate (prefer [`EstimatorCache`] for repeated queries).
pub fn estimate(t: &SparseTensor, modes: &[usize], how: NnzEstimator) -> f64 {
    let nnz = t.nnz();
    if nnz == 0 {
        return 0.0;
    }
    let space: f64 = modes.iter().map(|&m| t.dims()[m] as f64).product();
    let upper = (nnz as f64).min(space);
    let raw = match how {
        NnzEstimator::Exact => distinct_projections(t, modes) as f64,
        NnzEstimator::Analytic => analytic_occupancy(nnz as f64, space),
        NnzEstimator::Sampled { sample } => {
            if sample >= nnz {
                distinct_projections(t, modes) as f64
            } else {
                sampled_estimate(t, modes, sample)
            }
        }
    };
    raw.clamp(1.0, upper)
}

/// Expected number of occupied cells when `n` balls land uniformly in `m`
/// bins: `m (1 - (1 - 1/m)^n)`, computed stably via `exp(n ln(1-1/m))`.
pub fn analytic_occupancy(n: f64, m: f64) -> f64 {
    if m <= 1.0 {
        return 1.0_f64.min(n);
    }
    // ln_1p / exp_m1 keep precision when 1/m or the whole exponent is tiny
    // (m up to 10^30 for high-order tensors).
    let log_miss = n * (-1.0 / m).ln_1p();
    m * -log_miss.exp_m1()
}

/// Distinct-count scale-up from a deterministic stride sample.
///
/// Two bracketing estimators are blended:
///
/// * **Occupancy inversion** (method of moments): if the `nnz` entries
///   fall on `D` keys of homogeneous multiplicity `nnz / D`, a
///   fraction-`q` sample observes `E[d] = D (1 - (1-q)^(nnz/D))` distinct
///   keys; invert by bisection. Exact in expectation for homogeneous
///   multiplicities (uniform tensors); by Jensen's inequality (the hit
///   probability is concave in multiplicity) it *under*-estimates under
///   skew.
/// * **Chao1** (`d + f1(f1-1)/(2(f2+1))`, capped at the linear scale-up
///   `d/q`): built from sample singleton/doubleton counts; on these
///   workloads it errs high.
///
/// The geometric mean of a bracketing pair keeps the relative error of
/// both extremes small: it is exact when either is exact (the other
/// degrades gracefully toward the cap) and splits the bracket otherwise.
fn sampled_estimate(t: &SparseTensor, modes: &[usize], sample: usize) -> f64 {
    let nnz = t.nnz();
    // Round the stride up so the sample spans the whole entry array —
    // entries are typically sorted, and a truncated prefix would bias the
    // sample toward the head keys.
    let stride = nnz.div_ceil(sample).max(1);
    let picked: Vec<usize> = (0..nnz).step_by(stride).collect();
    let mut keys: Vec<Vec<u32>> =
        picked.iter().map(|&k| modes.iter().map(|&m| t.mode_idx(m)[k]).collect()).collect();
    keys.sort_unstable();
    // Distinct keys plus singleton/doubleton counts in one scan.
    let mut d = 0usize;
    let (mut f1, mut f2) = (0usize, 0usize);
    let mut i = 0usize;
    while i < keys.len() {
        let mut j = i + 1;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        d += 1;
        match j - i {
            1 => f1 += 1,
            2 => f2 += 1,
            _ => {}
        }
        i = j;
    }
    let d = d as f64;
    let q = picked.len() as f64 / nnz as f64;
    if q >= 1.0 {
        return d;
    }
    // Occupancy inversion: bisect E[d](D) = D (1-(1-q)^(nnz/D)) = d over
    // D in [d, d/q].
    let expected = |big_d: f64| -> f64 { big_d * -((nnz as f64 / big_d) * (-q).ln_1p()).exp_m1() };
    let (mut lo, mut hi) = (d, d / q);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < d {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mom = 0.5 * (lo + hi);
    let chao = (d + (f1 as f64 * (f1 as f64 - 1.0)) / (2.0 * (f2 as f64 + 1.0))).min(d / q);
    (mom * chao).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::gen::{uniform_tensor, zipf_tensor};

    #[test]
    fn exact_matches_stats_oracle() {
        let t = zipf_tensor(&[30, 40, 20], 1_000, &[0.7; 3], 3);
        for modes in [vec![0], vec![0, 1], vec![1, 2]] {
            let e = estimate(&t, &modes, NnzEstimator::Exact);
            assert_eq!(e as usize, distinct_projections(&t, &modes));
        }
    }

    #[test]
    fn analytic_exactish_for_uniform_tensors() {
        let t = uniform_tensor(&[100, 100, 100], 20_000, 7);
        for modes in [vec![0, 1], vec![1, 2]] {
            let exact = distinct_projections(&t, &modes) as f64;
            let est = estimate(&t, &modes, NnzEstimator::Analytic);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.05, "modes {modes:?}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn analytic_occupancy_limits() {
        // n << m: nearly all distinct.
        assert!((analytic_occupancy(10.0, 1e12) - 10.0).abs() < 1e-6);
        // n >> m: saturates at m.
        assert!((analytic_occupancy(1e9, 100.0) - 100.0).abs() < 1e-6);
        // Degenerate single bin.
        assert_eq!(analytic_occupancy(5.0, 1.0), 1.0);
    }

    #[test]
    fn sampled_within_tolerance_on_skewed_tensor() {
        let t = zipf_tensor(&[500, 500, 500, 500], 40_000, &[0.9; 4], 11);
        for modes in [vec![0, 1], vec![2, 3]] {
            let exact = distinct_projections(&t, &modes) as f64;
            let est = estimate(&t, &modes, NnzEstimator::Sampled { sample: 8_192 });
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.35, "modes {modes:?}: est {est} vs exact {exact} (rel {rel:.2})");
        }
    }

    #[test]
    fn sampled_falls_back_to_exact_for_small_tensors() {
        let t = zipf_tensor(&[20, 20], 200, &[0.5; 2], 2);
        let e = estimate(&t, &[0], NnzEstimator::Sampled { sample: 100_000 });
        assert_eq!(e as usize, distinct_projections(&t, &[0]));
    }

    #[test]
    fn estimates_respect_hard_bounds() {
        let t = zipf_tensor(&[5, 5, 400], 2_000, &[1.2, 1.2, 0.1], 6);
        for how in
            [NnzEstimator::Exact, NnzEstimator::Analytic, NnzEstimator::Sampled { sample: 128 }]
        {
            for modes in [vec![0], vec![0, 1], vec![2]] {
                let e = estimate(&t, &modes, how);
                let space: f64 = modes.iter().map(|&m| t.dims()[m] as f64).product();
                assert!(e >= 1.0, "{how:?} {modes:?}");
                assert!(e <= (t.nnz() as f64).min(space) + 1e-9, "{how:?} {modes:?}: {e}");
            }
        }
    }

    #[test]
    fn empty_tensor_estimates_zero() {
        let t = SparseTensor::empty(vec![4, 4]);
        assert_eq!(estimate(&t, &[0], NnzEstimator::Exact), 0.0);
        assert_eq!(estimate(&t, &[0], NnzEstimator::Analytic), 0.0);
    }

    #[test]
    fn cache_hits_avoid_recomputation() {
        let t = uniform_tensor(&[50, 50, 50], 3_000, 4);
        let mut cache = EstimatorCache::new(&t, NnzEstimator::Exact);
        let a = cache.elems(&[0, 1]);
        let b = cache.elems(&[1, 0]); // order-insensitive
        assert_eq!(a, b);
        assert_eq!(cache.misses, 1);
        // Full mode set short-circuits to nnz without a miss.
        assert_eq!(cache.elems(&[0, 1, 2]), 3_000.0);
        assert_eq!(cache.misses, 1);
    }
}
