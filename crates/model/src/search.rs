//! Strategy-space search: finding the best memoization tree.
//!
//! The search space is the set of dimension trees over `N` modes. Three
//! walkers with increasing coverage:
//!
//! * [`named_shapes`] — the fixed baselines the literature compares
//!   (flat / 3-level / balanced binary / left-deep);
//! * [`interval_dp`] — the optimal *binary* tree whose leaves follow a
//!   given mode permutation, found by dynamic programming over contiguous
//!   intervals in `O(N³)` model evaluations. A key structural fact makes
//!   the DP clean: computing both children of a node with mode set `S`
//!   costs `elems(S) * R * (|S| + 2)` flops *regardless of where the split
//!   falls* — the split only matters through the element counts of the
//!   subtrees it creates;
//! * [`subset_dp`] — the exact optimum over **all** binary trees (any
//!   mode partition), `O(3^N)` DP over subsets, practical for `N <= 8`.

use crate::estimate::EstimatorCache;
use adatm_dtree::TreeShape;
use std::collections::HashMap;

/// The named baseline strategies with their table labels.
pub fn named_shapes(n: usize) -> Vec<(&'static str, TreeShape)> {
    vec![
        ("flat", TreeShape::two_level(n)),
        ("3level", TreeShape::three_level(n)),
        ("bdt", TreeShape::balanced_binary(n)),
        ("leftdeep", TreeShape::left_deep(n)),
    ]
}

/// Mode orderings to seed the interval DP with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// Modes in their natural order.
    Natural,
    /// Largest mode first (big modes split off early, keeping
    /// intermediates small deeper in the tree).
    DimsDescending,
    /// Smallest mode first.
    DimsAscending,
}

impl OrderHeuristic {
    /// Materializes the permutation for a tensor with the given mode sizes.
    pub fn order(self, dims: &[usize]) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..dims.len()).collect();
        match self {
            OrderHeuristic::Natural => {}
            OrderHeuristic::DimsDescending => perm.sort_by_key(|&m| std::cmp::Reverse(dims[m])),
            OrderHeuristic::DimsAscending => perm.sort_by_key(|&m| dims[m]),
        }
        perm
    }
}

/// Result of a DP search: the best shape and its predicted flops.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The winning tree.
    pub shape: TreeShape,
    /// Predicted fused multiply-adds per iteration under the model.
    pub flops: f64,
}

/// Optimal binary tree over contiguous intervals of `perm`, under the
/// pure flop objective.
///
/// # Panics
/// Panics if `perm` has fewer than 2 modes.
pub fn interval_dp(perm: &[usize], rank: usize, cache: &mut EstimatorCache<'_>) -> SearchResult {
    interval_dp_weighted(perm, rank, cache, 0.0, 0.0)
}

/// Interval DP minimizing `flops + lambda_per_byte * value_bytes` (kept
/// for the memory-budget sweep; traffic weight zero).
pub fn interval_dp_penalized(
    perm: &[usize],
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    lambda_per_byte: f64,
) -> SearchResult {
    interval_dp_weighted(perm, rank, cache, 0.0, lambda_per_byte)
}

/// Interval DP minimizing the full objective
/// `flops + beta * traffic_bytes + lambda * value_bytes`.
///
/// * `beta` (flops per byte) charges the value-stream traffic of each
///   node computation — the read of the source (tensor or parent value
///   matrix) plus the write of the node's own value matrix. MTTKRP is
///   memory-bound, so this term decides between strategies with similar
///   flop counts (it is what makes a 3-level tree beat a balanced binary
///   tree on high-order tensors with weak index collapse).
/// * `lambda_per_byte` additionally penalizes materialized bytes; the
///   planner sweeps it to generate memory/compute trade-off candidates
///   under a budget.
///
/// Both terms decompose over the recursion (each node's read depends on
/// its parent interval, each write on its own interval), so the DP stays
/// exact for the stated objective.
///
/// # Panics
/// Panics if `perm` has fewer than 2 modes or a weight is negative.
pub fn interval_dp_weighted(
    perm: &[usize],
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    beta: f64,
    lambda_per_byte: f64,
) -> SearchResult {
    let n = perm.len();
    assert!(n >= 2, "need at least 2 modes");
    assert!(beta >= 0.0 && lambda_per_byte >= 0.0, "weights must be nonnegative");
    let r = rank as f64;
    // elems[a][b] for intervals [a, b).
    let mut elems = vec![vec![0.0f64; n + 1]; n];
    for a in 0..n {
        for b in (a + 1)..=n {
            elems[a][b] = cache.elems(&perm[a..b]);
        }
    }
    // Value-matrix write bytes of an interval.
    let write = |a: usize, b: usize| elems[a][b] * r * 8.0;
    // Read bytes of consuming an interval as a parent: root streams the
    // tensor (values + index columns); inner nodes stream R-wide rows.
    let read = |a: usize, b: usize| {
        if b - a == n {
            elems[a][b] * (8.0 + n as f64 * 4.0)
        } else {
            elems[a][b] * r * 8.0
        }
    };
    // g[a][b]: min objective of the subtree on [a, b), including the
    // write of [a, b) itself (charged to every non-root interval) but
    // excluding the read of its parent.
    let mut g = vec![vec![0.0f64; n + 1]; n];
    let mut split = vec![vec![0usize; n + 1]; n];
    for len in 2..=n {
        for a in 0..=(n - len) {
            let b = a + len;
            let flops = elems[a][b] * r * (len as f64 + 2.0);
            // Two children are computed from this node: two reads.
            let own = flops
                + beta * 2.0 * read(a, b)
                + if len == n { 0.0 } else { (beta + lambda_per_byte) * write(a, b) };
            let (mut best, mut best_s) = (f64::INFINITY, a + 1);
            for (s, gs) in g.iter().enumerate().take(b).skip(a + 1) {
                let c = g[a][s] + gs[b];
                if c < best {
                    best = c;
                    best_s = s;
                }
            }
            g[a][b] = own + best;
            split[a][b] = best_s;
        }
    }
    // Leaves contribute their own writes.
    // (Constant across all trees over the same permutation, so it does
    // not affect the argmin; omitted from g.)
    let shape = TreeShape::from_splits(perm, 0, n, &|lo, hi| split[lo][hi]);
    // Report unweighted flops for the chosen shape so callers compare
    // like for like.
    let flops = if beta == 0.0 && lambda_per_byte == 0.0 {
        g[0][n]
    } else {
        shape_flops(&shape, perm, r, &elems_lookup(perm, &elems))
    };
    SearchResult { shape, flops }
}

/// Lookup closure from a mode interval's *sorted mode set* to its
/// estimated element count, backed by the DP's interval table.
fn elems_lookup<'a>(perm: &'a [usize], elems: &'a [Vec<f64>]) -> impl Fn(&[usize]) -> f64 + 'a {
    move |modes: &[usize]| {
        // Find the contiguous interval of `perm` with this mode set.
        let n = perm.len();
        for a in 0..n {
            for b in (a + 1)..=n {
                if b - a == modes.len() {
                    let mut window: Vec<usize> = perm[a..b].to_vec();
                    window.sort_unstable();
                    let mut target = modes.to_vec();
                    target.sort_unstable();
                    if window == target {
                        return elems[a][b];
                    }
                }
            }
        }
        unreachable!("mode set must be a contiguous interval of the permutation")
    }
}

/// Unpenalized flop total of a binary tree over the permutation, using
/// interval element counts.
fn shape_flops(
    shape: &TreeShape,
    _perm: &[usize],
    r: f64,
    elems_of: &impl Fn(&[usize]) -> f64,
) -> f64 {
    fn walk(s: &TreeShape, r: f64, elems_of: &impl Fn(&[usize]) -> f64) -> f64 {
        match s {
            TreeShape::Leaf(_) => 0.0,
            TreeShape::Internal(children) => {
                let modes = s.modes();
                let own = elems_of(&modes) * r * (modes.len() as f64 + 2.0);
                own + children.iter().map(|c| walk(c, r, elems_of)).sum::<f64>()
            }
        }
    }
    walk(shape, r, elems_of)
}

/// Exact optimum over all binary trees (subset DP), pure flop objective.
///
/// # Panics
/// Panics if `n < 2` or `n > 16` (the DP is `O(3^N)`).
pub fn subset_dp(n: usize, rank: usize, cache: &mut EstimatorCache<'_>) -> SearchResult {
    subset_dp_weighted(n, rank, cache, 0.0)
}

/// Exact optimum over all binary trees under
/// `flops + beta * traffic_bytes` (see [`interval_dp_weighted`]).
///
/// # Panics
/// Panics if `n < 2` or `n > 16` (the DP is `O(3^N)`).
pub fn subset_dp_weighted(
    n: usize,
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    beta: f64,
) -> SearchResult {
    assert!((2..=16).contains(&n), "subset DP practical only for 2 <= N <= 16");
    assert!(beta >= 0.0, "weight must be nonnegative");
    let r = rank as f64;
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let modes_of = |mask: u32| -> Vec<usize> { (0..n).filter(|&m| mask & (1 << m) != 0).collect() };
    // Masks ordered by popcount so children are solved before parents.
    let mut masks: Vec<u32> = (1..=full).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut g: HashMap<u32, f64> = HashMap::new();
    let mut best_split: HashMap<u32, u32> = HashMap::new();
    let mut pure_flops: HashMap<u32, f64> = HashMap::new();
    for &mask in &masks {
        let k = mask.count_ones();
        if k == 1 {
            g.insert(mask, 0.0);
            pure_flops.insert(mask, 0.0);
            continue;
        }
        let e = cache.elems(&modes_of(mask));
        let flops = e * r * (k as f64 + 2.0);
        // Two children read this node; non-root nodes also pay their own
        // value-matrix write.
        let read = if mask == full { e * (8.0 + n as f64 * 4.0) } else { e * r * 8.0 };
        let write = if mask == full { 0.0 } else { e * r * 8.0 };
        let own = flops + beta * (2.0 * read + write);
        let mut best = f64::INFINITY;
        let mut arg = 0u32;
        // Enumerate proper submasks; visit each unordered split once by
        // requiring the submask to contain the lowest set bit.
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            if sub & low != 0 {
                let c = g[&sub] + g[&(mask ^ sub)];
                if c < best {
                    best = c;
                    arg = sub;
                }
            }
            sub = (sub - 1) & mask;
        }
        g.insert(mask, own + best);
        let pf = flops + pure_flops[&arg] + pure_flops[&(mask ^ arg)];
        pure_flops.insert(mask, pf);
        best_split.insert(mask, arg);
    }
    fn rebuild(mask: u32, split: &HashMap<u32, u32>) -> TreeShape {
        if mask.count_ones() == 1 {
            return TreeShape::Leaf(mask.trailing_zeros() as usize);
        }
        let a = split[&mask];
        TreeShape::internal(vec![rebuild(a, split), rebuild(mask ^ a, split)])
    }
    SearchResult { shape: rebuild(full, &best_split), flops: pure_flops[&full] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::predict;
    use crate::estimate::NnzEstimator;
    use adatm_tensor::gen::{uniform_tensor, zipf_tensor};
    use adatm_tensor::SparseTensor;

    fn cache(t: &SparseTensor) -> EstimatorCache<'_> {
        EstimatorCache::new(t, NnzEstimator::Exact)
    }

    #[test]
    fn named_shapes_cover_baselines() {
        let shapes = named_shapes(4);
        assert_eq!(shapes.len(), 4);
        for (_, s) in &shapes {
            s.validate();
        }
    }

    #[test]
    fn order_heuristics() {
        let dims = [10usize, 40, 20, 30];
        assert_eq!(OrderHeuristic::Natural.order(&dims), vec![0, 1, 2, 3]);
        assert_eq!(OrderHeuristic::DimsDescending.order(&dims), vec![1, 3, 2, 0]);
        assert_eq!(OrderHeuristic::DimsAscending.order(&dims), vec![0, 2, 3, 1]);
    }

    #[test]
    fn interval_dp_flops_matches_cost_model() {
        let t = zipf_tensor(&[30, 25, 35, 20], 2_000, &[0.8; 4], 7);
        let mut c = cache(&t);
        let perm: Vec<usize> = (0..4).collect();
        let res = interval_dp(&perm, 8, &mut c);
        let cb = predict(&res.shape, 8, &mut c);
        assert!(
            (res.flops - cb.flops_per_iter).abs() < 1e-6,
            "dp {} vs model {}",
            res.flops,
            cb.flops_per_iter
        );
    }

    #[test]
    fn interval_dp_beats_or_ties_every_contiguous_named_shape() {
        let t = zipf_tensor(&[40, 10, 50, 15, 45, 12], 3_000, &[0.9; 6], 9);
        let mut c = cache(&t);
        let perm: Vec<usize> = (0..6).collect();
        let res = interval_dp(&perm, 8, &mut c);
        // The BDT, 3-level and left-deep trees are contiguous binary trees
        // on the natural order, hence inside the DP's space.
        for shape in [
            adatm_dtree::TreeShape::balanced_binary(6),
            adatm_dtree::TreeShape::three_level(6),
            adatm_dtree::TreeShape::left_deep(6),
        ] {
            let cb = predict(&shape, 8, &mut c);
            assert!(
                res.flops <= cb.flops_per_iter + 1e-6,
                "dp {} worse than {shape}: {}",
                res.flops,
                cb.flops_per_iter
            );
        }
    }

    #[test]
    fn subset_dp_at_least_as_good_as_interval_dp() {
        let t = zipf_tensor(&[35, 8, 42, 11, 27], 2_500, &[1.0; 5], 13);
        let mut c = cache(&t);
        let best_interval = interval_dp(&(0..5).collect::<Vec<_>>(), 8, &mut c);
        let best_subset = subset_dp(5, 8, &mut c);
        assert!(best_subset.flops <= best_interval.flops + 1e-6);
        best_subset.shape.validate();
    }

    #[test]
    fn subset_dp_flops_matches_cost_model() {
        let t = zipf_tensor(&[20, 22, 24, 26], 1_500, &[0.7; 4], 3);
        let mut c = cache(&t);
        let res = subset_dp(4, 4, &mut c);
        let cb = predict(&res.shape, 4, &mut c);
        assert!((res.flops - cb.flops_per_iter).abs() < 1e-6);
    }

    #[test]
    fn subset_dp_exhaustive_check_on_3_modes() {
        // For N = 3 there are exactly 3 unordered binary trees:
        // ((01)2), ((02)1), ((12)0). Verify the DP picks the argmin.
        let t = zipf_tensor(&[15, 45, 25], 1_200, &[1.0, 0.2, 0.8], 17);
        let mut c = cache(&t);
        let res = subset_dp(3, 8, &mut c);
        let mut best = f64::INFINITY;
        for (a, b, lone) in [(0, 1, 2), (0, 2, 1), (1, 2, 0)] {
            let shape = TreeShape::internal(vec![
                TreeShape::internal(vec![TreeShape::Leaf(a), TreeShape::Leaf(b)]),
                TreeShape::Leaf(lone),
            ]);
            best = best.min(predict(&shape, 8, &mut c).flops_per_iter);
        }
        assert!((res.flops - best).abs() < 1e-6, "dp {} vs exhaustive {best}", res.flops);
    }

    #[test]
    fn penalized_dp_with_zero_lambda_equals_plain_dp() {
        let t = zipf_tensor(&[25, 30, 20, 35], 2_000, &[0.7; 4], 5);
        let mut c = cache(&t);
        let perm: Vec<usize> = (0..4).collect();
        let a = interval_dp(&perm, 8, &mut c);
        let b = interval_dp_penalized(&perm, 8, &mut c, 0.0);
        assert_eq!(a.shape, b.shape);
        assert!((a.flops - b.flops).abs() < 1e-9);
    }

    #[test]
    fn penalized_dp_reports_unpenalized_flops() {
        let t = zipf_tensor(&[25, 30, 20, 35, 15], 2_500, &[0.8; 5], 6);
        let mut c = cache(&t);
        let perm: Vec<usize> = (0..5).collect();
        let res = interval_dp_penalized(&perm, 8, &mut c, 32.0);
        let cb = predict(&res.shape, 8, &mut c);
        assert!(
            (res.flops - cb.flops_per_iter).abs() < 1e-6,
            "reported {} vs model {}",
            res.flops,
            cb.flops_per_iter
        );
    }

    #[test]
    fn high_penalty_drives_memory_down() {
        let t = uniform_tensor(&[40; 6], 5_000, 8);
        let mut c = cache(&t);
        let perm: Vec<usize> = (0..6).collect();
        let free = interval_dp_penalized(&perm, 16, &mut c, 0.0);
        let tight = interval_dp_penalized(&perm, 16, &mut c, 1e6);
        let mem = |s: &TreeShape, c: &mut EstimatorCache<'_>| predict(s, 16, c).peak_value_bytes;
        let m_free = mem(&free.shape, &mut c);
        let m_tight = mem(&tight.shape, &mut c);
        assert!(m_tight <= m_free, "penalty should not increase memory: {m_tight} vs {m_free}");
        // And the extreme penalty should not cost more memory than flat-
        // equivalent contiguous trees allow... flops may rise instead.
        assert!(tight.flops >= free.flops - 1e-9);
    }

    #[test]
    fn dp_on_uniform_tensor_prefers_balanced_splits() {
        // With no index collapse and equal dims, balanced trees minimize
        // intermediate sizes, so the DP should not return a degenerate
        // caterpillar.
        let t = uniform_tensor(&[50; 8], 4_000, 21);
        let mut c = cache(&t);
        let res = interval_dp(&(0..8).collect::<Vec<_>>(), 8, &mut c);
        assert!(res.shape.height() <= 4, "got height {} tree {}", res.shape.height(), res.shape);
    }
}
