//! The model-driven memoization planner — the paper's core contribution.
//!
//! Memoizing partial MTTKRP products trades memory for flops, and the
//! right trade depends on the tensor: how much its nonzero index set
//! collapses under projection onto each candidate mode subset. Rather
//! than hardcoding one strategy (SPLATT: none; Phan et al.: one split;
//! Kaya–Uçar: a balanced binary tree) or auto-tuning empirically, the
//! planner *predicts* the per-iteration cost and memory of every
//! candidate dimension tree from cheap estimates of intermediate nonzero
//! counts, and picks the best strategy before any numeric work runs.
//!
//! * [`estimate`] — intermediate-nnz estimators: exact (sort-based),
//!   sampled (Chao-style scale-up from a coordinate sample), analytic
//!   (uniform-occupancy closed form);
//! * [`cost`] — the per-iteration flop model, the peak-live-value-memory
//!   model (which follows the tree-path invariant of the engine's
//!   invalidation protocol), index storage, and symbolic (one-time) cost;
//! * [`search`] — the strategy space walkers: named baseline shapes, the
//!   interval dynamic program over a mode permutation (`O(N³)` model
//!   evaluations), and the exact subset DP for small orders;
//! * [`plan`] — the [`plan::Planner`] facade combining them
//!   under a memory budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod estimate;
pub mod plan;
pub mod profile;
pub mod search;

pub use cost::CostBreakdown;
pub use estimate::NnzEstimator;
pub use plan::{AdmissionError, MemoPlan, Objective, Planner, SearchStrategy};
pub use profile::{ClassRate, EnvProfile, KernelClass, KernelProfile};
