//! Structured tracing for the adatm workspace.
//!
//! AdaTM's pitch is *model-driven* execution: the planner predicts
//! per-iteration wall time and picks a strategy. This crate records what
//! was predicted, what was chosen, and what actually happened, as a
//! stream of newline-delimited JSON (NDJSON) events — the observability
//! substrate for drift detection (a stale calibration profile shows up
//! as measured time diverging from predicted time, not as silence).
//!
//! # Design
//!
//! * **Zero cost when disabled.** A single relaxed atomic load guards
//!   every emission site; with no sink installed the [`event!`] and
//!   [`span_guard!`] macros evaluate none of their field expressions and
//!   allocate nothing. Kernels never emit — only driver-level stage
//!   boundaries do, so even an enabled trace costs a handful of
//!   formatted lines per CP-ALS iteration.
//! * **One global sink.** Installed process-wide ([`install_file`] /
//!   [`install_memory`]), torn down with [`shutdown`]. Events carry a
//!   monotonically increasing `seq` so interleavings are reconstructable
//!   and a validator can assert ordering.
//! * **No dependencies.** The workspace is offline; serialization is a
//!   hand-rolled JSON writer covering exactly the five value shapes
//!   events use (string, f64, u64, i64, bool).
//!
//! # Event schema
//!
//! Every line is a flat JSON object with at least:
//!
//! ```json
//! {"ev": "<kind>", "seq": 7}
//! ```
//!
//! plus kind-specific fields. Span pairs are emitted as
//! `{"ev": "span_open", "span": "<name>", ...}` and
//! `{"ev": "span_close", "span": "<name>", "elapsed_ns": N, ...}` and
//! must nest properly; `cargo xtask trace-check` validates both
//! properties over a captured file.
//!
//! # Example
//!
//! ```
//! let sink = adatm_trace::install_memory();
//! {
//!     let _span = adatm_trace::span_guard!("work", job: 3u64);
//!     adatm_trace::event!("progress", step: 1u64, label: "warmup");
//! }
//! adatm_trace::shutdown();
//! let lines = sink.lines();
//! assert_eq!(lines.len(), 3); // open, progress, close
//! assert!(lines[1].contains("\"ev\": \"progress\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schema;

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fast path: is any sink installed? Emission sites check this before
/// evaluating field expressions, so a disabled trace is one relaxed
/// atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global event sequence number (monotone across the whole process).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// The installed sink, if any.
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

enum Sink {
    File(BufWriter<File>),
    Memory(Arc<Mutex<Vec<String>>>),
}

/// Whether a trace sink is installed. Inline-able fast guard for
/// emission sites; the [`event!`] and [`span_guard!`] macros call it for
/// you.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a file sink writing NDJSON to `path` (truncating). Replaces
/// any previously installed sink.
pub fn install_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("trace sink lock") = Some(Sink::File(BufWriter::new(file)));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Installs an in-memory sink (for tests) and returns a handle that can
/// read the captured lines. Replaces any previously installed sink.
pub fn install_memory() -> MemorySink {
    let buf = Arc::new(Mutex::new(Vec::new()));
    *SINK.lock().expect("trace sink lock") = Some(Sink::Memory(Arc::clone(&buf)));
    ENABLED.store(true, Ordering::Relaxed);
    MemorySink(buf)
}

/// Flushes and removes the installed sink, disabling tracing.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut sink = SINK.lock().expect("trace sink lock");
    if let Some(Sink::File(w)) = sink.as_mut() {
        let _ = w.flush();
    }
    *sink = None;
}

/// Flushes the file sink (no-op for memory sinks / no sink).
pub fn flush() {
    if let Some(Sink::File(w)) = SINK.lock().expect("trace sink lock").as_mut() {
        let _ = w.flush();
    }
}

/// Handle to an in-memory sink's captured lines.
#[derive(Clone)]
pub struct MemorySink(Arc<Mutex<Vec<String>>>);

impl MemorySink {
    /// A copy of every captured NDJSON line, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().expect("trace memory sink lock").clone()
    }
}

/// A JSON-representable field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string (escaped on write).
    Str(String),
    /// A float, written with enough precision to round-trip rankings.
    F64(f64),
    /// An unsigned integer (counts, nanoseconds, sequence numbers).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_json_str(out, s),
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.6e}");
                } else {
                    // NaN/Inf are not JSON; stringify so the line stays
                    // parseable and the oddity stays visible.
                    write_json_str(out, &v.to_string());
                }
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// One trace event under construction: a kind plus ordered fields.
#[derive(Clone, Debug)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &'static str) -> Self {
        Event { kind, fields: Vec::with_capacity(8) }
    }

    /// Appends a field (builder form).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: Value) -> Self {
        self.fields.push((key, value));
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: &'static str, value: Value) {
        self.fields.push((key, value));
    }

    fn render(&self, seq: u64) -> String {
        let mut line = String::with_capacity(96);
        line.push_str("{\"ev\": ");
        write_json_str(&mut line, self.kind);
        let _ = write!(line, ", \"seq\": {seq}");
        for (k, v) in &self.fields {
            line.push_str(", ");
            write_json_str(&mut line, k);
            line.push_str(": ");
            v.write_json(&mut line);
        }
        line.push('}');
        line
    }
}

/// Emits an event to the installed sink (no-op when tracing is
/// disabled). Prefer the [`event!`] macro, which skips field
/// construction entirely when disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let line = event.render(seq);
    let mut sink = SINK.lock().expect("trace sink lock");
    match sink.as_mut() {
        Some(Sink::File(w)) => {
            // One line per event, flushed eagerly: stage-boundary volume
            // is tiny and a crashed run should still leave a valid file.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        Some(Sink::Memory(buf)) => buf.lock().expect("trace memory sink lock").push(line),
        None => {}
    }
}

/// An open span: emits `span_open` on construction and `span_close`
/// (with `elapsed_ns` and the same fields) when dropped. Construct
/// through [`span_guard!`], which returns `None` when tracing is
/// disabled.
pub struct Span {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Opens a span, emitting its `span_open` event.
    pub fn open(name: &'static str, fields: Vec<(&'static str, Value)>) -> Self {
        let mut e = Event::new("span_open");
        e.push("span", Value::from(name));
        for (k, v) in &fields {
            e.push(k, v.clone());
        }
        emit(e);
        Span { name, start: Instant::now(), fields }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let mut e = Event::new("span_close");
        e.push("span", Value::from(self.name));
        for (k, v) in &self.fields {
            e.push(k, v.clone());
        }
        e.push("elapsed_ns", Value::U64(self.start.elapsed().as_nanos() as u64));
        emit(e);
    }
}

/// Emits a structured event when tracing is enabled; otherwise evaluates
/// nothing.
///
/// ```
/// adatm_trace::event!("planner.decision", chosen: "bdt", use_csf: false);
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident : $val:expr)* $(,)?) => {
        if $crate::enabled() {
            let mut __e = $crate::Event::new($kind);
            $(__e.push(stringify!($key), $crate::Value::from($val));)*
            $crate::emit(__e);
        }
    };
}

/// Opens a span guard: `Some(Span)` when tracing is enabled (emitting
/// `span_open` now and `span_close` on drop), `None` otherwise. Bind it
/// to a named local so the close fires at scope exit:
///
/// ```
/// let _span = adatm_trace::span_guard!("iteration", iter: 0u64);
/// ```
#[macro_export]
macro_rules! span_guard {
    ($name:expr $(, $key:ident : $val:expr)* $(,)?) => {
        if $crate::enabled() {
            Some($crate::Span::open(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            ))
        } else {
            None
        }
    };
}

/// Extracts a `"name": "value"` string field from an NDJSON line
/// (test/validator helper; not a general JSON parser).
pub fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts a `"name": 123` unsigned numeric field from an NDJSON line.
pub fn field_u64(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts a `"name": 1.23e4` float field from an NDJSON line.
pub fn field_f64(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let num: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The sink is process-global; unit tests that install one must not
    /// interleave.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_tracing_emits_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        shutdown();
        assert!(!enabled());
        // The macro must not evaluate its fields when disabled.
        let mut evaluated = false;
        event!("never", x: {
            evaluated = true;
            1u64
        });
        assert!(!evaluated);
    }

    #[test]
    fn events_render_escaped_flat_json_with_monotone_seq() {
        let _g = TEST_LOCK.lock().unwrap();
        let sink = install_memory();
        event!("alpha", label: "a \"quoted\"\npath", count: 3usize, ratio: 0.5f64, on: true);
        event!("beta", neg: -4i64);
        shutdown();
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\": \"alpha\""));
        assert!(lines[0].contains("\\\"quoted\\\"\\npath"));
        assert!(lines[0].contains("\"count\": 3"));
        assert!(lines[0].contains("\"ratio\": 5.000000e-1"));
        assert!(lines[0].contains("\"on\": true"));
        assert!(lines[1].contains("\"neg\": -4"));
        let s0 = field_u64(&lines[0], "seq").unwrap();
        let s1 = field_u64(&lines[1], "seq").unwrap();
        assert!(s1 > s0, "seq must increase: {s0} then {s1}");
    }

    #[test]
    fn span_guard_emits_matching_open_close_with_elapsed() {
        let _g = TEST_LOCK.lock().unwrap();
        let sink = install_memory();
        {
            let _outer = span_guard!("outer", iter: 7usize);
            {
                let _inner = span_guard!("inner");
            }
        }
        shutdown();
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        assert_eq!(field_str(&lines[0], "span"), Some("outer"));
        assert_eq!(field_str(&lines[1], "span"), Some("inner"));
        assert_eq!(field_str(&lines[2], "span"), Some("inner"));
        assert_eq!(field_str(&lines[3], "span"), Some("outer"));
        assert!(lines[3].contains("\"ev\": \"span_close\""));
        assert!(field_u64(&lines[3], "elapsed_ns").is_some());
        assert_eq!(field_u64(&lines[3], "iter"), Some(7));
    }

    #[test]
    fn file_sink_writes_ndjson() {
        let _g = TEST_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("adatm_trace_test.ndjson");
        install_file(&path).unwrap();
        event!("filed", k: 1u64);
        shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert_eq!(field_str(lines[0], "ev"), Some("filed"));
    }

    #[test]
    fn field_helpers_parse_rendered_values() {
        let line = r#"{"ev": "x", "seq": 12, "ns": 4.500000e3, "name": "abc"}"#;
        assert_eq!(field_u64(line, "seq"), Some(12));
        assert_eq!(field_f64(line, "ns"), Some(4500.0));
        assert_eq!(field_str(line, "name"), Some("abc"));
        assert_eq!(field_u64(line, "missing"), None);
    }
}
