//! The trace-event schema registry: the single declared source of truth
//! for every NDJSON event and span this workspace emits.
//!
//! Two enforcement points consume the same tables:
//!
//! * **Statically**, `cargo xtask analyze` (the `adatm-analyze` engine)
//!   extracts every `event!`/`span_guard!` call site in the workspace
//!   and checks its kind, field names, and inferable field types against
//!   this registry — an emitter cannot add or rename a field without
//!   declaring it here.
//! * **Dynamically**, `cargo xtask trace-check` validates a captured
//!   NDJSON file line by line against the same tables — a runtime event
//!   cannot carry an undeclared field or a wrongly-shaped value.
//!
//! The README's trace-schema table is *generated* from
//! [`markdown_table`] (between `<!-- trace-schema:begin -->` /
//! `<!-- trace-schema:end -->` markers), so the prose cannot drift from
//! the registry either; `cargo xtask analyze --fix-docs` rewrites it.

/// The JSON value shape of one event field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldType {
    /// A JSON string.
    Str,
    /// A float, rendered `{v:.6e}` (non-finite values degrade to a
    /// string so the line stays parseable JSON).
    F64,
    /// An unsigned integer.
    U64,
    /// A signed integer (sentinel `-1` conventions live here).
    I64,
    /// A boolean.
    Bool,
}

impl FieldType {
    /// Short lowercase name used in diagnostics and the generated table.
    pub fn name(self) -> &'static str {
        match self {
            FieldType::Str => "str",
            FieldType::F64 => "f64",
            FieldType::U64 => "u64",
            FieldType::I64 => "i64",
            FieldType::Bool => "bool",
        }
    }
}

/// One declared field of an event or span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSpec {
    /// JSON key.
    pub name: &'static str,
    /// Value shape.
    pub ty: FieldType,
    /// Whether every emission must carry the field. Optional fields
    /// cover shape variants (e.g. the `stage` event's `mode` is absent
    /// for the per-iteration `fit` stage).
    pub required: bool,
}

const fn req(name: &'static str, ty: FieldType) -> FieldSpec {
    FieldSpec { name, ty, required: true }
}

const fn opt(name: &'static str, ty: FieldType) -> FieldSpec {
    FieldSpec { name, ty, required: false }
}

/// Schema of one event kind (one `ev` value).
#[derive(Clone, Copy, Debug)]
pub struct EventSchema {
    /// The `ev` discriminator.
    pub kind: &'static str,
    /// Who emits it (for the generated docs table).
    pub emitted_by: &'static str,
    /// Declared fields beyond the universal `ev`/`seq` pair.
    pub fields: &'static [FieldSpec],
}

/// Schema of one span name (emitted as paired `span_open`/`span_close`
/// events; the close additionally carries `elapsed_ns`).
#[derive(Clone, Copy, Debug)]
pub struct SpanSchema {
    /// The `span` name.
    pub name: &'static str,
    /// Who opens it (for the generated docs table).
    pub emitted_by: &'static str,
    /// Declared fields beyond `ev`/`seq`/`span` (and `elapsed_ns` on
    /// close).
    pub fields: &'static [FieldSpec],
}

use FieldType::{Bool, Str, F64, I64, U64};

/// Every declared event kind. Sorted by kind for deterministic docs.
pub const EVENTS: &[EventSchema] = &[
    EventSchema {
        kind: "admission.decision",
        emitted_by: "planner memory-budget admission",
        fields: &[
            req("decision", Str),
            req("budget_bytes", U64),
            req("resident_bytes", F64),
            req("label", Str),
        ],
    },
    EventSchema {
        kind: "backend.dispatch",
        emitted_by: "adaptive backend construction",
        fields: &[
            req("engine", Str),
            req("shape", Str),
            req("use_csf", Bool),
            req("use_coo", Bool),
            req("predicted_ns", F64),
        ],
    },
    EventSchema {
        kind: "backend.reset",
        emitted_by: "recovery-path cache flush",
        fields: &[req("backend", Str)],
    },
    EventSchema {
        kind: "backend.schedule_rebuild",
        emitted_by: "COO/CSF backends",
        fields: &[req("backend", Str), req("mode", U64), req("threads", U64)],
    },
    EventSchema {
        kind: "checkpoint.resume",
        emitted_by: "checkpoint store load/fallback scan",
        fields: &[req("iter", U64), req("gen", U64), req("fallbacks", U64)],
    },
    EventSchema {
        kind: "checkpoint.write",
        emitted_by: "CP-ALS iteration-boundary checkpoint store",
        fields: &[req("iter", U64), req("gen", U64), req("bytes", U64), req("elapsed_ns", U64)],
    },
    EventSchema {
        kind: "drift.check",
        emitted_by: "post-run prediction audit",
        fields: &[req("predicted_ns", F64), req("measured_ns", F64), req("factor", F64)],
    },
    EventSchema {
        kind: "drift.warning",
        emitted_by: "post-run prediction audit",
        fields: &[
            req("predicted_ns", F64),
            req("measured_ns", F64),
            req("ratio", F64),
            req("factor", F64),
        ],
    },
    EventSchema {
        kind: "planner.candidate",
        emitted_by: "planner, per enumerated shape",
        fields: &[
            req("rank_pos", U64),
            req("label", Str),
            req("cost_units", F64),
            req("fits_budget", Bool),
            req("predicted_ns", F64),
        ],
    },
    EventSchema {
        kind: "planner.decision",
        emitted_by: "planner, once per plan",
        fields: &[
            req("label", Str),
            req("dispatch", Str),
            req("calibrated", Bool),
            req("threads", U64),
            req("candidates", U64),
            req("estimator_evals", U64),
            req("predicted_ns", F64),
            req("csf_predicted_ns", F64),
            req("coo_predicted_ns", F64),
        ],
    },
    EventSchema {
        kind: "profile.error",
        emitted_by: "ADATM_PROFILE resolution",
        fields: &[req("path", Str), req("error", Str)],
    },
    EventSchema {
        kind: "profile.loaded",
        emitted_by: "ADATM_PROFILE resolution",
        fields: &[req("path", Str), req("age_s", I64), req("threads", U64)],
    },
    EventSchema {
        kind: "recovery",
        emitted_by: "RunDiagnostics::record",
        fields: &[
            req("iter", U64),
            req("mode", I64),
            req("kind", Str),
            req("action", Str),
            req("recovery_ns", U64),
        ],
    },
    EventSchema {
        kind: "stage",
        emitted_by: "every timed ALS phase",
        fields: &[
            req("iter", U64),
            opt("mode", U64),
            req("stage", Str),
            req("elapsed_ns", U64),
            opt("fit", F64),
        ],
    },
    EventSchema {
        kind: "watchdog.expired",
        emitted_by: "time-budget re-checks at stage boundaries",
        fields: &[
            req("iter", U64),
            req("mode", U64),
            req("stage", Str),
            req("budget_ns", U64),
            req("elapsed_ns", U64),
        ],
    },
];

/// Every declared span name. Sorted by name for deterministic docs.
pub const SPANS: &[SpanSchema] = &[
    SpanSchema {
        name: "cpals.iter",
        emitted_by: "one CP-ALS iteration",
        fields: &[req("iter", U64)],
    },
    SpanSchema {
        name: "cpals.mode",
        emitted_by: "one mode update within an iteration",
        fields: &[req("iter", U64), req("mode", U64)],
    },
    SpanSchema {
        name: "cpals.run",
        emitted_by: "the whole CP-ALS run",
        fields: &[
            req("backend", Str),
            req("rank", U64),
            req("max_iters", U64),
            req("ndim", U64),
            req("nnz", U64),
        ],
    },
];

/// Field names injected by the emitter itself — no event may declare or
/// pass them.
pub const RESERVED_EVENT_FIELDS: &[&str] = &["ev", "seq"];

/// Field names injected by the emitter or the span machinery — no span
/// may declare or pass them.
pub const RESERVED_SPAN_FIELDS: &[&str] = &["ev", "seq", "span", "elapsed_ns"];

/// Looks up the schema for an event kind.
pub fn find_event(kind: &str) -> Option<&'static EventSchema> {
    EVENTS.iter().find(|e| e.kind == kind)
}

/// Looks up the schema for a span name.
pub fn find_span(name: &str) -> Option<&'static SpanSchema> {
    SPANS.iter().find(|s| s.name == name)
}

fn field_cell(fields: &[FieldSpec]) -> String {
    fields
        .iter()
        .map(|f| {
            if f.required {
                format!("`{}`:{}", f.name, f.ty.name())
            } else {
                format!("`{}`:{}?", f.name, f.ty.name())
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the registry as the README's markdown table (the content
/// between the `trace-schema` markers). `?` marks optional fields.
pub fn markdown_table() -> String {
    let mut out = String::new();
    out.push_str("| `ev` | emitted by | fields |\n|---|---|---|\n");
    for e in EVENTS {
        out.push_str(&format!("| `{}` | {} | {} |\n", e.kind, e.emitted_by, field_cell(e.fields)));
    }
    for s in SPANS {
        out.push_str(&format!(
            "| `span_open`/`span_close` `{}` | {} | `span`:str, {}; `elapsed_ns`:u64 on close |\n",
            s.name,
            s.emitted_by,
            field_cell(s.fields)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_sorted_and_unique() {
        for w in EVENTS.windows(2) {
            assert!(w[0].kind < w[1].kind, "{} !< {}", w[0].kind, w[1].kind);
        }
        for w in SPANS.windows(2) {
            assert!(w[0].name < w[1].name);
        }
    }

    #[test]
    fn field_names_are_unique_per_event() {
        for e in EVENTS {
            let mut names: Vec<_> = e.fields.iter().map(|f| f.name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate field in {}", e.kind);
        }
    }

    #[test]
    fn reserved_field_names_never_declared() {
        // `ev` and `seq` are injected by the emitter; `span` and
        // `elapsed_ns` are injected by the span machinery.
        for e in EVENTS {
            for f in e.fields {
                assert!(!RESERVED_EVENT_FIELDS.contains(&f.name), "{} declares {}", e.kind, f.name);
            }
        }
        for s in SPANS {
            for f in s.fields {
                assert!(!RESERVED_SPAN_FIELDS.contains(&f.name), "{} declares {}", s.name, f.name);
            }
        }
    }

    #[test]
    fn lookups_find_declared_kinds() {
        assert!(find_event("stage").is_some());
        assert!(find_event("no.such.kind").is_none());
        assert!(find_span("cpals.iter").is_some());
        assert!(find_span("nope").is_none());
    }

    #[test]
    fn markdown_table_covers_every_kind() {
        let table = markdown_table();
        for e in EVENTS {
            assert!(table.contains(&format!("`{}`", e.kind)), "missing {}", e.kind);
        }
        for s in SPANS {
            assert!(table.contains(&format!("`{}`", s.name)), "missing {}", s.name);
        }
    }
}
