//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The only eigendecomposition CP-ALS needs is of the `R x R` Hadamard
//! product of Gram matrices, with `R` typically below 64. At that scale the
//! classic cyclic Jacobi method is simple, numerically robust (it computes
//! small eigenvalues with high relative accuracy, which matters because the
//! pseudoinverse truncates them), and fast enough to be invisible next to
//! the MTTKRP.

use crate::mat::Mat;
use crate::LinalgError;

/// Result of a symmetric eigendecomposition `A = V diag(w) V^T`.
#[derive(Clone, Debug)]
pub struct EigH {
    /// Eigenvalues, in the order produced by the sweep (not sorted).
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per **column** of `vectors`.
    pub vectors: Mat,
}

/// Maximum number of full Jacobi sweeps before giving up.
///
/// Cyclic Jacobi on the `R x R` matrices CP-ALS produces converges in a
/// handful of sweeps; the cap exists so hostile input (or a bug upstream)
/// can never spin the solver — hitting it is surfaced as
/// [`LinalgError::NoConvergence`] by [`try_jacobi_eigh`].
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi
/// rotations.
///
/// Convergence is declared when the off-diagonal Frobenius norm falls below
/// `1e-14` times the matrix Frobenius norm. Symmetry is taken on trust: only
/// the upper triangle is read when choosing rotations.
///
/// This is the infallible wrapper kept for callers that control their
/// input (benchmarks, tests); solver drivers should prefer
/// [`try_jacobi_eigh`], which reports non-finite input and sweep-cap
/// exhaustion as typed errors instead of panicking.
///
/// # Panics
/// Panics if `a` is not square, contains non-finite entries, or the sweep
/// cap is exhausted.
pub fn jacobi_eigh(a: &Mat) -> EigH {
    try_jacobi_eigh(a).unwrap_or_else(|e| panic!("jacobi_eigh: {e}"))
}

/// Fallible [`jacobi_eigh`]: rejects non-square and non-finite input and
/// surfaces sweep-cap exhaustion instead of returning silent garbage.
///
/// The non-finite pre-check matters: NaN anywhere in the input makes every
/// rotation angle NaN, so without it the solver would burn all
/// [`MAX_SWEEPS`] sweeps and hand back an all-NaN "decomposition" that
/// poisons everything downstream.
pub fn try_jacobi_eigh(a: &Mat) -> Result<EigH, LinalgError> {
    if a.nrows() != a.ncols() {
        return Err(LinalgError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { what: "eigensolver input matrix" });
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = Mat::eye(n);
    if n <= 1 {
        return Ok(EigH { values: (0..n).map(|i| m.get(i, i)).collect(), vectors: v });
    }
    let total_norm = m.fro_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * total_norm;
    let mut off_norm = 0.0;

    for _sweep in 0..=MAX_SWEEPS {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).powi(2);
            }
        }
        off_norm = (2.0 * off).sqrt();
        if off_norm <= tol {
            return Ok(EigH { values: (0..n).map(|i| m.get(i, i)).collect(), vectors: v });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Stable computation of the rotation angle (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, theta): M <- J^T M J, V <- V J.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    Err(LinalgError::NoConvergence { sweeps: MAX_SWEEPS, off_norm })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigH) -> Mat {
        let n = e.values.len();
        let mut d = Mat::zeros(n, n);
        for (i, &w) in e.values.iter().enumerate() {
            d.set(i, i, w);
        }
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    fn random_sym(n: usize, seed: u64) -> Mat {
        let a = Mat::random(n, n, seed);
        let mut s = a.clone();
        let at = a.transpose();
        for i in 0..n {
            for j in 0..n {
                s.set(i, j, 0.5 * (a.get(i, j) + at.get(i, j)));
            }
        }
        s
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = Mat::zeros(3, 3);
        a.set(0, 0, 2.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 5.0);
        let e = jacobi_eigh(&a);
        let mut w = e.values.clone();
        w.sort_by(f64::total_cmp);
        assert!((w[0] + 1.0).abs() < 1e-12);
        assert!((w[1] - 2.0).abs() < 1e-12);
        assert!((w[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigh(&a);
        let mut w = e.values.clone();
        w.sort_by(f64::total_cmp);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality_random() {
        for seed in 0..5u64 {
            let a = random_sym(8, seed);
            let e = jacobi_eigh(&a);
            assert!(reconstruct(&e).max_abs_diff(&a) < 1e-10, "seed {seed}");
            let vtv = e.vectors.transpose().matmul(&e.vectors);
            assert!(vtv.max_abs_diff(&Mat::eye(8)) < 1e-10, "seed {seed}");
        }
    }

    #[test]
    fn gram_matrices_have_nonnegative_eigenvalues() {
        let u = Mat::random(50, 6, 9);
        let g = u.gram();
        let e = jacobi_eigh(&g);
        for &w in &e.values {
            assert!(w > -1e-10, "eigenvalue {w} should be >= 0 for a Gram matrix");
        }
    }

    #[test]
    fn handles_1x1_and_empty() {
        let a = Mat::from_vec(1, 1, vec![4.0]);
        let e = jacobi_eigh(&a);
        assert_eq!(e.values, vec![4.0]);
        let z = Mat::zeros(0, 0);
        let e = jacobi_eigh(&z);
        assert!(e.values.is_empty());
    }

    #[test]
    fn try_eigh_rejects_non_finite_input() {
        let mut a = Mat::eye(3);
        a.set(1, 2, f64::NAN);
        a.set(2, 1, f64::NAN);
        assert!(matches!(try_jacobi_eigh(&a), Err(LinalgError::NonFinite { .. })));
        a.set(1, 2, f64::INFINITY);
        a.set(2, 1, f64::INFINITY);
        assert!(matches!(try_jacobi_eigh(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn try_eigh_rejects_non_square() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(try_jacobi_eigh(&a), Err(LinalgError::NotSquare { nrows: 2, ncols: 3 })));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infallible_eigh_panics_loudly_on_nan() {
        let mut a = Mat::eye(2);
        a.set(0, 0, f64::NAN);
        let _ = jacobi_eigh(&a);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_eigenvalue() {
        // Outer product u u^T has rank 1.
        let u = [1.0, 2.0, 3.0];
        let mut a = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a.set(i, j, u[i] * u[j]);
            }
        }
        let e = jacobi_eigh(&a);
        let mut w = e.values.clone();
        w.sort_by(f64::total_cmp);
        assert!(w[0].abs() < 1e-12);
        assert!(w[1].abs() < 1e-12);
        assert!((w[2] - 14.0).abs() < 1e-10);
    }
}
