//! Small dense linear-algebra kernels for sparse CP decomposition.
//!
//! CP-ALS on a rank-`R` decomposition only ever needs dense operations at
//! two scales:
//!
//! * **tall-skinny**: the factor matrices `U^(n)` and MTTKRP results
//!   `M^(n)` are `I_n x R` with `R` small (typically 8–64), and
//! * **tiny square**: the Gram matrices `W^(n) = U^(n)^T U^(n)` and their
//!   Hadamard products `H^(n)` are `R x R`.
//!
//! Rather than pulling in an external BLAS/LAPACK binding, this crate
//! implements exactly the kernels the solver needs on a row-major [`Mat`]
//! type: Gram products, general matrix multiply, Hadamard products, column
//! normalization, a cyclic Jacobi symmetric eigensolver, and the
//! Moore–Penrose pseudoinverse built on top of it. Tall-skinny kernels are
//! parallelized with rayon; `R x R` kernels run sequentially because they
//! are far below parallelization thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eig;
pub mod mat;
pub mod pinv;
pub mod qr;

pub use eig::{jacobi_eigh, EigH};
pub use mat::Mat;
pub use pinv::{pinv_sym, solve_gram};
pub use qr::{thin_qr, ThinQr};

/// Machine-epsilon-scale tolerance used when truncating near-zero
/// eigenvalues in pseudoinverse computations.
pub const PINV_RCOND: f64 = 1e-12;
