//! Small dense linear-algebra kernels for sparse CP decomposition.
//!
//! CP-ALS on a rank-`R` decomposition only ever needs dense operations at
//! two scales:
//!
//! * **tall-skinny**: the factor matrices `U^(n)` and MTTKRP results
//!   `M^(n)` are `I_n x R` with `R` small (typically 8–64), and
//! * **tiny square**: the Gram matrices `W^(n) = U^(n)^T U^(n)` and their
//!   Hadamard products `H^(n)` are `R x R`.
//!
//! Rather than pulling in an external BLAS/LAPACK binding, this crate
//! implements exactly the kernels the solver needs on a row-major [`Mat`]
//! type: Gram products, general matrix multiply, Hadamard products, column
//! normalization, a cyclic Jacobi symmetric eigensolver, and the
//! Moore–Penrose pseudoinverse built on top of it. Tall-skinny kernels are
//! parallelized with rayon; `R x R` kernels run sequentially because they
//! are far below parallelization thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eig;
pub mod kernels;
pub mod mat;
pub mod pinv;
pub mod qr;

pub use eig::{jacobi_eigh, try_jacobi_eigh, EigH};
pub use mat::Mat;
pub use pinv::{pinv_sym, ridge_solve_gram, solve_gram, try_solve_gram, GramSolveInfo};
pub use qr::{thin_qr, ThinQr};

/// Machine-epsilon-scale tolerance used when truncating near-zero
/// eigenvalues in pseudoinverse computations.
pub const PINV_RCOND: f64 = 1e-12;

/// Typed failures of the dense kernels.
///
/// The `try_`-prefixed entry points ([`try_jacobi_eigh`],
/// [`try_solve_gram`], [`ridge_solve_gram`]) return these instead of
/// panicking or silently producing NaN, so solver drivers can detect a
/// numeric breakdown and apply a recovery policy.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// The input contained NaN or infinite entries.
    NonFinite {
        /// Which operand was non-finite.
        what: &'static str,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        nrows: usize,
        /// Column count of the offending matrix.
        ncols: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The iterative eigensolver did not converge within its sweep cap.
    NoConvergence {
        /// Number of full Jacobi sweeps performed before giving up.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius norm when the cap was hit.
        off_norm: f64,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite entries (NaN/Inf) in {what}")
            }
            LinalgError::NotSquare { nrows, ncols } => {
                write!(f, "expected a square matrix, got {nrows} x {ncols}")
            }
            LinalgError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            LinalgError::NoConvergence { sweeps, off_norm } => {
                write!(f, "eigensolver failed to converge after {sweeps} sweeps (off-diagonal norm {off_norm:.3e})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
