//! Thin QR factorization by modified Gram–Schmidt.
//!
//! Used by the randomized range-finder initialization of CP-ALS: the
//! sketch `X_(n) * Omega` is a tall-skinny matrix whose orthonormal range
//! makes a better starting factor than raw random entries. At `R <= 64`
//! columns, modified Gram–Schmidt with one reorthogonalization pass is
//! numerically adequate and avoids a Householder implementation.

use crate::mat::Mat;

/// Result of a thin QR factorization `A = Q R` with `Q` orthonormal
/// columns (`m x k`) and `R` upper triangular (`k x k`).
#[derive(Clone, Debug)]
pub struct ThinQr {
    /// Orthonormal basis of the column space (rank-deficient columns are
    /// replaced by zeros).
    pub q: Mat,
    /// The triangular factor.
    pub r: Mat,
}

/// Columns with norm below this (relative to the largest column) are
/// treated as linearly dependent and zeroed.
const RANK_TOL: f64 = 1e-12;

/// Computes the thin QR of `a` by modified Gram–Schmidt with a second
/// orthogonalization pass (the "twice is enough" rule).
pub fn thin_qr(a: &Mat) -> ThinQr {
    let (m, k) = (a.nrows(), a.ncols());
    let mut q = a.clone();
    let mut r = Mat::zeros(k, k);
    let scale = a.fro_norm().max(f64::MIN_POSITIVE);
    for j in 0..k {
        // Two MGS passes against all previous columns.
        for _pass in 0..2 {
            for i in 0..j {
                let mut dot = 0.0;
                for row in 0..m {
                    dot += q.get(row, i) * q.get(row, j);
                }
                if dot != 0.0 {
                    let rij = r.get(i, j);
                    r.set(i, j, rij + dot);
                    for row in 0..m {
                        let v = q.get(row, j) - dot * q.get(row, i);
                        q.set(row, j, v);
                    }
                }
            }
        }
        let mut norm = 0.0;
        for row in 0..m {
            norm += q.get(row, j) * q.get(row, j);
        }
        let norm = norm.sqrt();
        r.set(j, j, norm);
        if norm > RANK_TOL * scale {
            for row in 0..m {
                let v = q.get(row, j) / norm;
                q.set(row, j, v);
            }
        } else {
            // Dependent column: zero it so downstream code sees an honest
            // rank deficiency instead of noise.
            for row in 0..m {
                q.set(row, j, 0.0);
            }
        }
    }
    ThinQr { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        for seed in 0..3u64 {
            let a = Mat::random(40, 6, seed);
            let qr = thin_qr(&a);
            let back = qr.q.matmul(&qr.r);
            assert!(back.max_abs_diff(&a) < 1e-10, "seed {seed}");
        }
    }

    #[test]
    fn q_columns_are_orthonormal() {
        let a = Mat::random(50, 8, 9);
        let qr = thin_qr(&a);
        let qtq = qr.q.gram();
        assert!(qtq.max_abs_diff(&Mat::eye(8)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Mat::random(30, 5, 4);
        let qr = thin_qr(&a);
        for i in 1..5 {
            for j in 0..i {
                assert_eq!(qr.r.get(i, j), 0.0, "({i},{j}) below diagonal");
            }
        }
    }

    #[test]
    fn rank_deficient_column_is_zeroed() {
        // Third column = first + second.
        let mut a = Mat::random(20, 3, 7);
        for row in 0..20 {
            let v = a.get(row, 0) + a.get(row, 1);
            a.set(row, 2, v);
        }
        let qr = thin_qr(&a);
        let col2_norm: f64 = (0..20).map(|r| qr.q.get(r, 2).powi(2)).sum();
        assert!(col2_norm < 1e-20, "dependent column should be zeroed");
        // First two columns still orthonormal.
        for j in 0..2 {
            let n: f64 = (0..20).map(|r| qr.q.get(r, j).powi(2)).sum();
            assert!((n - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_is_its_own_qr() {
        let qr = thin_qr(&Mat::eye(4));
        assert!(qr.q.max_abs_diff(&Mat::eye(4)) < 1e-12);
        assert!(qr.r.max_abs_diff(&Mat::eye(4)) < 1e-12);
    }
}
