//! Row-major dense matrix type and the kernels CP-ALS needs.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Minimum number of rows before tall-skinny kernels switch to rayon.
///
/// Below this the parallel runtime overhead dominates; `R x R` Gram/Hadamard
/// work in CP-ALS never reaches it.
const PAR_ROW_THRESHOLD: usize = 4096;

/// A dense, row-major, `f64` matrix.
///
/// Rows are contiguous, which matches how every sparse kernel in this
/// workspace touches factor matrices: a nonzero with index `i` in mode `n`
/// reads or updates the whole row `U^(n)(i, :)` at once.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length must be nrows * ncols");
        Mat { nrows, ncols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `(0, 1)`.
    ///
    /// Deterministic for a given `seed`, so factor initializations are
    /// reproducible across runs and across backends under comparison.
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(f64::MIN_POSITIVE, 1.0);
        let data = (0..nrows * ncols).map(|_| dist.sample(&mut rng)).collect();
        Mat { nrows, ncols, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// Borrows row `i` as a slice of length `ncols`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Iterates over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.ncols.max(1))
    }

    /// Fills the matrix with zeros in place, keeping its allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Computes the Gram matrix `self^T * self` (`ncols x ncols`).
    ///
    /// This is the `W^(n) = U^(n)^T U^(n)` step of CP-ALS. Parallelized by
    /// reducing per-chunk partial Grams, which keeps the accumulation
    /// deterministic enough for convergence checks (each chunk is summed in
    /// a fixed order; the cross-chunk reduction order may vary but the
    /// summands are identical).
    pub fn gram(&self) -> Mat {
        let r = self.ncols;
        let accumulate = |acc: &mut [f64], rows: &[f64]| {
            for row in rows.chunks_exact(r) {
                for (i, &a) in row.iter().enumerate() {
                    let out = &mut acc[i * r..(i + 1) * r];
                    crate::kernels::axpy(out, a, row);
                }
            }
        };
        let data = if self.nrows >= PAR_ROW_THRESHOLD {
            self.data
                .par_chunks(PAR_ROW_THRESHOLD * r)
                .fold(
                    || vec![0.0; r * r],
                    |mut acc, rows| {
                        accumulate(&mut acc, rows);
                        acc
                    },
                )
                .reduce(
                    || vec![0.0; r * r],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                )
        } else {
            let mut acc = vec![0.0; r * r];
            accumulate(&mut acc, &self.data);
            acc
        };
        Mat::from_vec(r, r, data)
    }

    /// Computes `self * other`.
    ///
    /// The CP-ALS use is `U^(n) = M^(n) * H^(n)^dagger` with `other` an
    /// `R x R` matrix, so the kernel parallelizes over rows of `self` and
    /// keeps `other` resident.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let (n, k, m) = (self.nrows, self.ncols, other.ncols);
        let mut out = Mat::zeros(n, m);
        let kernel = |row: &[f64], orow: &mut [f64]| {
            for (l, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[l * m..(l + 1) * m];
                crate::kernels::axpy(orow, a, brow);
            }
        };
        if n >= PAR_ROW_THRESHOLD {
            out.data
                .par_chunks_mut(m)
                .zip(self.data.par_chunks(k))
                .for_each(|(orow, row)| kernel(row, orow));
        } else {
            for (orow, row) in out.data.chunks_mut(m).zip(self.data.chunks(k)) {
                kernel(row, orow);
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.data[j * self.nrows + i] = self.data[i * self.ncols + j];
            }
        }
        out
    }

    /// In-place element-wise (Hadamard) product with `other`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn hadamard_assign(&mut self, other: &Mat) {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols), "hadamard shape mismatch");
        crate::kernels::mul_assign(&mut self.data, &other.data);
    }

    /// Element-wise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        let mut out = self.clone();
        out.hadamard_assign(other);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Euclidean norm of each column.
    pub fn col_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.ncols];
        for row in self.data.chunks_exact(self.ncols.max(1)) {
            for (n, &x) in norms.iter_mut().zip(row.iter()) {
                *n += x * x;
            }
        }
        norms.iter_mut().for_each(|n| *n = n.sqrt());
        norms
    }

    /// Maximum absolute value of each column (the "max norm" used by CP-ALS
    /// implementations after the first iteration so factors do not shrink).
    pub fn col_max_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0_f64; self.ncols];
        for row in self.data.chunks_exact(self.ncols.max(1)) {
            for (n, &x) in norms.iter_mut().zip(row.iter()) {
                *n = n.max(x.abs());
            }
        }
        norms
    }

    /// Divides each column by the given scale. A zero scale maps to a
    /// zero multiplier (the column is zeroed — which leaves it unchanged
    /// in the normalization use case, where a zero scale only arises from
    /// an already-zero column).
    ///
    /// # Panics
    /// Panics if `scales.len() != ncols`.
    pub fn scale_cols_inv(&mut self, scales: &[f64]) {
        assert_eq!(scales.len(), self.ncols, "scale vector length mismatch");
        let inv: Vec<f64> = scales.iter().map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 }).collect();
        for row in self.data.chunks_exact_mut(self.ncols.max(1)) {
            for (x, &s) in row.iter_mut().zip(inv.iter()) {
                *x *= s;
            }
        }
    }

    /// Normalizes each column to unit 2-norm and returns the norms
    /// (the `lambda` vector of CP-ALS). Zero columns are left untouched and
    /// report norm 0.
    pub fn normalize_cols(&mut self) -> Vec<f64> {
        let norms = self.col_norms();
        self.scale_cols_inv(&norms);
        norms
    }

    /// Normalizes each column by its max norm, returning the scales.
    pub fn normalize_cols_max(&mut self) -> Vec<f64> {
        let norms = self.col_max_norms();
        self.scale_cols_inv(&norms);
        norms
    }

    /// Dot product of column `j` with the corresponding column of `other`.
    pub fn col_dot(&self, other: &Mat, j: usize) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        (0..self.nrows).map(|i| self.get(i, j) * other.get(i, j)).sum()
    }

    /// Element-wise sum of `self^T * other` weighted by the outer product
    /// `lambda * lambda^T`... more plainly: computes
    /// `sum_{r,s} a[r] * b[s] * G[r][s]` where `G = self` (an `R x R`
    /// matrix). Used by the efficient CP fit computation.
    pub fn weighted_quad(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(self.nrows, a.len());
        assert_eq!(self.ncols, b.len());
        let mut total = 0.0;
        for (i, &ai) in a.iter().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (&g, &bj) in row.iter().zip(b.iter()) {
                acc += g * bj;
            }
            total += ai * acc;
        }
        total
    }

    /// Whether every entry is finite (no NaN or infinity).
    ///
    /// Breakdown detectors scan factor matrices and MTTKRP outputs with
    /// this after every update; it is a single pass over the data and
    /// short-circuits on the first bad entry.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference between two matrices of equal shape.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Mat::random(5, 5, 7);
        let i = Mat::eye(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-15);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Mat::random(4, 3, 42);
        let b = Mat::random(4, 3, 42);
        let c = Mat::random(4, 3, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Mat::random(17, 5, 1);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&g2) < 1e-12);
    }

    #[test]
    fn gram_parallel_path_matches_sequential() {
        let a = Mat::random(PAR_ROW_THRESHOLD + 123, 3, 5);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&g2) < 1e-9);
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::random(6, 4, 2);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn normalize_cols_gives_unit_norms() {
        let mut a = Mat::random(10, 4, 3);
        let lambda = a.normalize_cols();
        for (j, &l) in lambda.iter().enumerate() {
            assert!(l > 0.0);
            let n: f64 = (0..10).map(|i| a.get(i, j).powi(2)).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-12, "column {j} norm {n}");
        }
    }

    #[test]
    fn normalize_handles_zero_column() {
        let mut a = Mat::zeros(3, 2);
        a.set(0, 0, 2.0);
        let lambda = a.normalize_cols();
        assert_eq!(lambda[1], 0.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn col_max_norms_matches_manual() {
        let a = Mat::from_vec(3, 2, vec![1.0, -9.0, -4.0, 2.0, 3.0, 0.5]);
        assert_eq!(a.col_max_norms(), vec![4.0, 9.0]);
    }

    #[test]
    fn weighted_quad_matches_explicit_sum() {
        let g = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let a = [0.5, 2.0];
        let b = [1.0, -1.0];
        // 0.5*(1*1 + 2*-1) + 2*(3*1 + 4*-1) = 0.5*(-1) + 2*(-1) = -2.5
        assert!((g.weighted_quad(&a, &b) + 2.5).abs() < 1e-15);
    }

    #[test]
    fn fro_norm_known() {
        let a = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "hadamard shape mismatch")]
    fn hadamard_rejects_shape_mismatch() {
        let mut a = Mat::zeros(2, 3);
        a.hadamard_assign(&Mat::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_inner_mismatch() {
        let _ = Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }

    #[test]
    fn rows_iterator_yields_each_row() {
        let a = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = a.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = Mat::random(4, 3, 1);
        a.fill_zero();
        assert_eq!(a.nrows(), 4);
        assert!(a.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scale_cols_inv_zero_scale_zeroes_column() {
        let mut a = Mat::from_vec(2, 2, vec![2.0, 4.0, 6.0, 8.0]);
        a.scale_cols_inv(&[2.0, 0.0]);
        assert_eq!(a.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn matmul_parallel_path_matches_small() {
        // Cross the row threshold to exercise the rayon branch.
        let a = Mat::random(PAR_ROW_THRESHOLD + 7, 3, 2);
        let b = Mat::random(3, 4, 3);
        let big = a.matmul(&b);
        // Spot-check a few rows against manual dot products.
        for &i in &[0usize, PAR_ROW_THRESHOLD, PAR_ROW_THRESHOLD + 6] {
            for j in 0..4 {
                let want: f64 = (0..3).map(|k| a.get(i, k) * b.get(k, j)).sum();
                assert!((big.get(i, j) - want).abs() < 1e-12);
            }
        }
    }
}
