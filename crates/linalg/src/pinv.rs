//! Moore–Penrose pseudoinverse of small symmetric matrices.
//!
//! CP-ALS solves `U^(n) H^(n) = M^(n)` where `H^(n)` is the Hadamard
//! product of Gram matrices — symmetric positive semidefinite, and often
//! numerically rank-deficient when factor columns become collinear during
//! the early iterations. The standard treatment (Tensor Toolbox, SPLATT) is
//! `U^(n) = M^(n) * pinv(H^(n))`, which this module provides via the Jacobi
//! eigendecomposition.

use crate::eig::jacobi_eigh;
use crate::mat::Mat;
use crate::PINV_RCOND;

/// Computes the pseudoinverse of a symmetric matrix.
///
/// Eigenvalues with magnitude below `rcond * max|eigenvalue|` are treated
/// as zero and excluded from the inverse, matching LAPACK `pinv` semantics.
///
/// # Panics
/// Panics if `h` is not square.
pub fn pinv_sym(h: &Mat, rcond: f64) -> Mat {
    let e = jacobi_eigh(h);
    let n = h.nrows();
    let wmax = e.values.iter().fold(0.0_f64, |m, &w| m.max(w.abs()));
    let cutoff = rcond * wmax;
    // pinv = V diag(1/w_i or 0) V^T
    let mut scaled = e.vectors.clone(); // columns scaled by inverse eigenvalues
    for (j, &w) in e.values.iter().enumerate() {
        let inv = if w.abs() > cutoff { 1.0 / w } else { 0.0 };
        for i in 0..n {
            let v = scaled.get(i, j) * inv;
            scaled.set(i, j, v);
        }
    }
    scaled.matmul(&e.vectors.transpose())
}

/// Solves the CP-ALS normal equations `U = M * pinv(H)` with the default
/// truncation threshold.
///
/// `m` is the tall-skinny MTTKRP result (`I_n x R`), `h` the `R x R`
/// Hadamard-of-Grams matrix. The returned matrix has the shape of `m`.
pub fn solve_gram(m: &Mat, h: &Mat) -> Mat {
    m.matmul(&pinv_sym(h, PINV_RCOND))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spd(n: usize, seed: u64) -> Mat {
        // A^T A + small diagonal shift is comfortably SPD.
        let a = Mat::random(2 * n, n, seed);
        let mut g = a.gram();
        for i in 0..n {
            let v = g.get(i, i) + 0.1;
            g.set(i, i, v);
        }
        g
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        for seed in 0..4u64 {
            let h = random_spd(6, seed);
            let p = pinv_sym(&h, PINV_RCOND);
            let id = h.matmul(&p);
            assert!(id.max_abs_diff(&Mat::eye(6)) < 1e-8, "seed {seed}");
        }
    }

    #[test]
    fn pinv_satisfies_penrose_conditions_on_singular_matrix() {
        // Rank-1 symmetric matrix.
        let u = [1.0, -2.0, 0.5];
        let mut h = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                h.set(i, j, u[i] * u[j]);
            }
        }
        let p = pinv_sym(&h, PINV_RCOND);
        // H P H = H
        assert!(h.matmul(&p).matmul(&h).max_abs_diff(&h) < 1e-10);
        // P H P = P
        assert!(p.matmul(&h).matmul(&p).max_abs_diff(&p) < 1e-10);
        // (HP)^T = HP (symmetry)
        let hp = h.matmul(&p);
        assert!(hp.transpose().max_abs_diff(&hp) < 1e-10);
    }

    #[test]
    fn pinv_of_identity_is_identity() {
        let p = pinv_sym(&Mat::eye(4), PINV_RCOND);
        assert!(p.max_abs_diff(&Mat::eye(4)) < 1e-12);
    }

    #[test]
    fn solve_gram_recovers_exact_solution() {
        // If M = U_true * H, solving should return U_true (H invertible).
        let h = random_spd(5, 11);
        let u_true = Mat::random(40, 5, 12);
        let m = u_true.matmul(&h);
        let u = solve_gram(&m, &h);
        assert!(u.max_abs_diff(&u_true) < 1e-7);
    }

    #[test]
    fn pinv_zero_matrix_is_zero() {
        let z = Mat::zeros(3, 3);
        let p = pinv_sym(&z, PINV_RCOND);
        assert!(p.max_abs_diff(&z) < 1e-15);
    }
}
