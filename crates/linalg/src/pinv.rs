//! Moore–Penrose pseudoinverse of small symmetric matrices.
//!
//! CP-ALS solves `U^(n) H^(n) = M^(n)` where `H^(n)` is the Hadamard
//! product of Gram matrices — symmetric positive semidefinite, and often
//! numerically rank-deficient when factor columns become collinear during
//! the early iterations. The standard treatment (Tensor Toolbox, SPLATT) is
//! `U^(n) = M^(n) * pinv(H^(n))`, which this module provides via the Jacobi
//! eigendecomposition.

use crate::eig::{jacobi_eigh, try_jacobi_eigh, EigH};
use crate::mat::Mat;
use crate::{LinalgError, PINV_RCOND};

/// Spectral diagnostics of a Gram solve, derived for free from the Jacobi
/// eigenvalues already computed for the pseudoinverse.
///
/// CP-ALS breakdown detectors read this after every normal-equations
/// solve: a truncated eigenvalue or an extreme condition number means the
/// factor columns have gone (numerically) collinear and the solve is a
/// candidate for a ridge re-solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GramSolveInfo {
    /// Largest eigenvalue magnitude of `H`.
    pub max_abs_eig: f64,
    /// Smallest eigenvalue magnitude of `H`.
    pub min_abs_eig: f64,
    /// Eigenvalues truncated to zero by the `rcond` cutoff (the numeric
    /// rank deficiency of `H`).
    pub truncated: usize,
}

impl GramSolveInfo {
    /// Spectral condition estimate `max|w| / min|w|`.
    ///
    /// Infinite when `H` is exactly singular; 1 for the empty/zero matrix
    /// (nothing to be ill-conditioned about).
    pub fn cond(&self) -> f64 {
        if self.max_abs_eig == 0.0 {
            1.0
        } else if self.min_abs_eig == 0.0 {
            f64::INFINITY
        } else {
            self.max_abs_eig / self.min_abs_eig
        }
    }

    /// Whether the pseudoinverse had to discard directions (numeric rank
    /// deficiency).
    pub fn rank_deficient(&self) -> bool {
        self.truncated > 0
    }
}

fn spectral_info(e: &EigH, cutoff: f64) -> GramSolveInfo {
    let mut info = GramSolveInfo { max_abs_eig: 0.0, min_abs_eig: f64::INFINITY, truncated: 0 };
    for &w in &e.values {
        let a = w.abs();
        info.max_abs_eig = info.max_abs_eig.max(a);
        info.min_abs_eig = info.min_abs_eig.min(a);
        if a <= cutoff {
            info.truncated += 1;
        }
    }
    if e.values.is_empty() {
        info.min_abs_eig = 0.0;
    }
    info
}

/// `V diag(f(w_i)) V^T` for an eigendecomposition and a spectral map `f`.
fn spectral_apply(e: &EigH, f: impl Fn(f64) -> f64) -> Mat {
    let n = e.values.len();
    let mut scaled = e.vectors.clone(); // columns scaled by f(eigenvalue)
    for (j, &w) in e.values.iter().enumerate() {
        let fw = f(w);
        for i in 0..n {
            let v = scaled.get(i, j) * fw;
            scaled.set(i, j, v);
        }
    }
    scaled.matmul(&e.vectors.transpose())
}

/// Computes the pseudoinverse of a symmetric matrix.
///
/// Eigenvalues with magnitude below `rcond * max|eigenvalue|` are treated
/// as zero and excluded from the inverse, matching LAPACK `pinv` semantics.
///
/// # Panics
/// Panics if `h` is not square, contains non-finite entries, or the
/// eigensolver fails; fallible callers should use [`try_solve_gram`].
pub fn pinv_sym(h: &Mat, rcond: f64) -> Mat {
    let e = jacobi_eigh(h);
    let wmax = e.values.iter().fold(0.0_f64, |m, &w| m.max(w.abs()));
    let cutoff = rcond * wmax;
    spectral_apply(&e, |w| if w.abs() > cutoff { 1.0 / w } else { 0.0 })
}

/// Solves the CP-ALS normal equations `U = M * pinv(H)` with the default
/// truncation threshold.
///
/// `m` is the tall-skinny MTTKRP result (`I_n x R`), `h` the `R x R`
/// Hadamard-of-Grams matrix. The returned matrix has the shape of `m`.
///
/// # Panics
/// Panics on non-finite or non-square `h` (see [`pinv_sym`]); resilient
/// drivers use [`try_solve_gram`] instead.
pub fn solve_gram(m: &Mat, h: &Mat) -> Mat {
    m.matmul(&pinv_sym(h, PINV_RCOND))
}

/// Fallible [`solve_gram`] returning spectral diagnostics alongside the
/// solution.
///
/// Fails (instead of panicking or emitting NaN) when `h` is non-square or
/// non-finite, when `m` is non-finite, or when the eigensolver exhausts
/// its sweep cap. The [`GramSolveInfo`] comes from the eigenvalues the
/// pseudoinverse computed anyway, so the condition estimate costs nothing
/// extra.
pub fn try_solve_gram(m: &Mat, h: &Mat) -> Result<(Mat, GramSolveInfo), LinalgError> {
    if m.ncols() != h.nrows() {
        return Err(LinalgError::ShapeMismatch {
            detail: format!(
                "MTTKRP result is {} x {}, Gram is {} x {}",
                m.nrows(),
                m.ncols(),
                h.nrows(),
                h.ncols()
            ),
        });
    }
    if !m.is_finite() {
        return Err(LinalgError::NonFinite { what: "normal-equations right-hand side" });
    }
    let e = try_jacobi_eigh(h)?;
    let wmax = e.values.iter().fold(0.0_f64, |mx, &w| mx.max(w.abs()));
    let cutoff = PINV_RCOND * wmax;
    let info = spectral_info(&e, cutoff);
    let pinv = spectral_apply(&e, |w| if w.abs() > cutoff { 1.0 / w } else { 0.0 });
    Ok((m.matmul(&pinv), info))
}

/// Tikhonov-regularized Gram solve: `U = M * (H + ridge I)^-1`.
///
/// The recovery policy for a degenerate Gram system: adding `ridge > 0`
/// to the diagonal moves every eigenvalue away from zero, so the solve is
/// well-posed even when `H` is exactly singular. Implemented on the same
/// eigendecomposition as the pseudoinverse (`H + ridge I` shares `H`'s
/// eigenvectors, with eigenvalues `w_i + ridge`).
pub fn ridge_solve_gram(m: &Mat, h: &Mat, ridge: f64) -> Result<Mat, LinalgError> {
    if m.ncols() != h.nrows() {
        return Err(LinalgError::ShapeMismatch {
            detail: format!(
                "MTTKRP result is {} x {}, Gram is {} x {}",
                m.nrows(),
                m.ncols(),
                h.nrows(),
                h.ncols()
            ),
        });
    }
    if !m.is_finite() {
        return Err(LinalgError::NonFinite { what: "normal-equations right-hand side" });
    }
    if !ridge.is_finite() || ridge <= 0.0 {
        return Err(LinalgError::NonFinite { what: "ridge parameter (must be finite and > 0)" });
    }
    let e = try_jacobi_eigh(h)?;
    // H is PSD in exact arithmetic; clamp tiny negative rounding so the
    // shifted eigenvalue can never cancel to zero.
    let inv = spectral_apply(&e, |w| 1.0 / (w.max(0.0) + ridge));
    Ok(m.matmul(&inv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spd(n: usize, seed: u64) -> Mat {
        // A^T A + small diagonal shift is comfortably SPD.
        let a = Mat::random(2 * n, n, seed);
        let mut g = a.gram();
        for i in 0..n {
            let v = g.get(i, i) + 0.1;
            g.set(i, i, v);
        }
        g
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        for seed in 0..4u64 {
            let h = random_spd(6, seed);
            let p = pinv_sym(&h, PINV_RCOND);
            let id = h.matmul(&p);
            assert!(id.max_abs_diff(&Mat::eye(6)) < 1e-8, "seed {seed}");
        }
    }

    #[test]
    fn pinv_satisfies_penrose_conditions_on_singular_matrix() {
        // Rank-1 symmetric matrix.
        let u = [1.0, -2.0, 0.5];
        let mut h = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                h.set(i, j, u[i] * u[j]);
            }
        }
        let p = pinv_sym(&h, PINV_RCOND);
        // H P H = H
        assert!(h.matmul(&p).matmul(&h).max_abs_diff(&h) < 1e-10);
        // P H P = P
        assert!(p.matmul(&h).matmul(&p).max_abs_diff(&p) < 1e-10);
        // (HP)^T = HP (symmetry)
        let hp = h.matmul(&p);
        assert!(hp.transpose().max_abs_diff(&hp) < 1e-10);
    }

    #[test]
    fn pinv_of_identity_is_identity() {
        let p = pinv_sym(&Mat::eye(4), PINV_RCOND);
        assert!(p.max_abs_diff(&Mat::eye(4)) < 1e-12);
    }

    #[test]
    fn solve_gram_recovers_exact_solution() {
        // If M = U_true * H, solving should return U_true (H invertible).
        let h = random_spd(5, 11);
        let u_true = Mat::random(40, 5, 12);
        let m = u_true.matmul(&h);
        let u = solve_gram(&m, &h);
        assert!(u.max_abs_diff(&u_true) < 1e-7);
    }

    #[test]
    fn pinv_zero_matrix_is_zero() {
        let z = Mat::zeros(3, 3);
        let p = pinv_sym(&z, PINV_RCOND);
        assert!(p.max_abs_diff(&z) < 1e-15);
    }

    #[test]
    fn try_solve_matches_infallible_solve_and_reports_full_rank() {
        let h = random_spd(5, 21);
        let m = Mat::random(30, 5, 22);
        let (u, info) = try_solve_gram(&m, &h).unwrap();
        assert!(u.max_abs_diff(&solve_gram(&m, &h)) < 1e-14);
        assert_eq!(info.truncated, 0);
        assert!(!info.rank_deficient());
        assert!(info.cond().is_finite() && info.cond() >= 1.0);
    }

    #[test]
    fn try_solve_flags_singular_gram() {
        // Rank-1 Gram: two of three eigenvalues truncated.
        let u = [1.0, -2.0, 0.5];
        let mut h = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                h.set(i, j, u[i] * u[j]);
            }
        }
        let m = Mat::random(10, 3, 4);
        let (_, info) = try_solve_gram(&m, &h).unwrap();
        assert_eq!(info.truncated, 2);
        assert!(info.rank_deficient());
        assert!(info.cond().is_infinite() || info.cond() > 1e12);
    }

    #[test]
    fn try_solve_rejects_non_finite_operands() {
        let h = random_spd(3, 1);
        let mut m = Mat::random(5, 3, 2);
        m.set(4, 1, f64::NAN);
        assert!(matches!(try_solve_gram(&m, &h), Err(LinalgError::NonFinite { .. })));
        let m = Mat::random(5, 3, 2);
        let mut bad_h = h.clone();
        bad_h.set(0, 2, f64::INFINITY);
        bad_h.set(2, 0, f64::INFINITY);
        assert!(matches!(try_solve_gram(&m, &bad_h), Err(LinalgError::NonFinite { .. })));
        assert!(matches!(
            try_solve_gram(&Mat::random(5, 4, 3), &h),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn ridge_solve_handles_exactly_singular_gram() {
        // H = u u^T is singular; the ridge solve must still return finite
        // factors close to the least-squares solution.
        let u = [2.0, 1.0, -1.0];
        let mut h = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                h.set(i, j, u[i] * u[j]);
            }
        }
        let m = Mat::random(12, 3, 8);
        let sol = ridge_solve_gram(&m, &h, 1e-6).unwrap();
        assert!(sol.is_finite());
        // On a consistent system (RHS in the range of H) the ridge
        // solution approaches the pseudoinverse solution as ridge -> 0.
        let consistent = Mat::random(12, 3, 9).matmul(&h);
        let pinv_sol = solve_gram(&consistent, &h);
        let tight = ridge_solve_gram(&consistent, &h, 1e-8).unwrap();
        assert!(tight.max_abs_diff(&pinv_sol) < 1e-4);
    }

    #[test]
    fn ridge_solve_matches_plain_solve_when_well_conditioned() {
        let h = random_spd(4, 31);
        let m = Mat::random(20, 4, 32);
        let plain = solve_gram(&m, &h);
        let ridged = ridge_solve_gram(&m, &h, 1e-14).unwrap();
        assert!(ridged.max_abs_diff(&plain) < 1e-8);
    }

    #[test]
    fn ridge_solve_rejects_bad_ridge() {
        let h = random_spd(3, 5);
        let m = Mat::random(6, 3, 6);
        assert!(ridge_solve_gram(&m, &h, 0.0).is_err());
        assert!(ridge_solve_gram(&m, &h, f64::NAN).is_err());
        assert!(ridge_solve_gram(&m, &h, -1.0).is_err());
    }
}
