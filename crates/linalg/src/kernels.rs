//! Rank-blocked elementwise microkernels shared by every hot loop.
//!
//! All sparse kernels in this workspace spend their inner loops on length-`R`
//! row operations (`R` = CP rank): Hadamard products, axpy updates, and fused
//! multiply-accumulates against factor-matrix rows. `R` is a runtime value,
//! so a naive `zip` loop compiles to scalar code with a loop-carried trip
//! count. The helpers here re-expose the same operations through
//! const-generic blocks (16 / 8 / 4 lanes) over `chunks_exact`, which gives
//! LLVM fixed-trip inner loops it fully unrolls and autovectorizes — no
//! `unsafe`, no intrinsics, and the scalar remainder path keeps awkward
//! ranks exact.
//!
//! Every operation is elementwise (lane `i` of the output depends only on
//! lane `i` of the inputs), so blocking never changes floating-point
//! evaluation order: results are **bitwise identical** to the scalar
//! reference loops for every length, which is what the backend determinism
//! tests rely on.
//!
//! Dispatch picks the largest block not exceeding the slice length
//! (`>=16 -> 16`, `>=8 -> 8`, else `4`), so the common power-of-two ranks
//! (8, 16, 32, ...) run entirely inside exact blocks and a rank like 17
//! runs one 16-lane block plus one scalar tail element.

/// `acc[i] *= src[i]` — the Hadamard / own-factor update.
#[adatm::hot]
#[inline]
pub fn mul_assign(acc: &mut [f64], src: &[f64]) {
    debug_assert_eq!(acc.len(), src.len());
    match acc.len() {
        n if n >= 16 => mul_assign_b::<16>(acc, src),
        n if n >= 8 => mul_assign_b::<8>(acc, src),
        _ => mul_assign_b::<4>(acc, src),
    }
}

/// `acc[i] += src[i]` — reduction-set / child-sum accumulation.
#[adatm::hot]
#[inline]
pub fn add_assign(acc: &mut [f64], src: &[f64]) {
    debug_assert_eq!(acc.len(), src.len());
    match acc.len() {
        n if n >= 16 => add_assign_b::<16>(acc, src),
        n if n >= 8 => add_assign_b::<8>(acc, src),
        _ => add_assign_b::<4>(acc, src),
    }
}

/// `acc[i] += alpha * src[i]` — the row-axpy of Gram/matmul and the fused
/// order-2 MTTKRP update.
#[adatm::hot]
#[inline]
pub fn axpy(acc: &mut [f64], alpha: f64, src: &[f64]) {
    debug_assert_eq!(acc.len(), src.len());
    match acc.len() {
        n if n >= 16 => axpy_b::<16>(acc, alpha, src),
        n if n >= 8 => axpy_b::<8>(acc, alpha, src),
        _ => axpy_b::<4>(acc, alpha, src),
    }
}

/// `dst[i] = alpha * src[i]` — scratch seeding from a tensor value.
#[adatm::hot]
#[inline]
pub fn scale(dst: &mut [f64], alpha: f64, src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    match dst.len() {
        n if n >= 16 => scale_b::<16>(dst, alpha, src),
        n if n >= 8 => scale_b::<8>(dst, alpha, src),
        _ => scale_b::<4>(dst, alpha, src),
    }
}

/// `dst[i] = a[i] * b[i]` — assigning Hadamard product.
#[adatm::hot]
#[inline]
pub fn mul_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    match dst.len() {
        n if n >= 16 => mul_into_b::<16>(dst, a, b),
        n if n >= 8 => mul_into_b::<8>(dst, a, b),
        _ => mul_into_b::<4>(dst, a, b),
    }
}

/// `acc[i] += a[i] * b[i]` — the fused final MTTKRP accumulate.
#[adatm::hot]
#[inline]
pub fn muladd_assign(acc: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(acc.len(), a.len());
    debug_assert_eq!(acc.len(), b.len());
    match acc.len() {
        n if n >= 16 => muladd_assign_b::<16>(acc, a, b),
        n if n >= 8 => muladd_assign_b::<8>(acc, a, b),
        _ => muladd_assign_b::<4>(acc, a, b),
    }
}

/// `acc[i] += alpha * a[i] * b[i]` — the fused order-3 MTTKRP entry
/// update (`val * u_a * u_b`), evaluated left-to-right like the unfused
/// scale-then-multiply sequence, so results are bitwise identical.
#[adatm::hot]
#[inline]
pub fn axpy2(acc: &mut [f64], alpha: f64, a: &[f64], b: &[f64]) {
    debug_assert_eq!(acc.len(), a.len());
    debug_assert_eq!(acc.len(), b.len());
    match acc.len() {
        n if n >= 16 => axpy2_b::<16>(acc, alpha, a, b),
        n if n >= 8 => axpy2_b::<8>(acc, alpha, a, b),
        _ => axpy2_b::<4>(acc, alpha, a, b),
    }
}

/// `acc[i] += alpha * a[i] * b[i] * c[i]` — the fused order-4 MTTKRP
/// entry update, left-to-right.
#[adatm::hot]
#[inline]
pub fn axpy3(acc: &mut [f64], alpha: f64, a: &[f64], b: &[f64], c: &[f64]) {
    debug_assert_eq!(acc.len(), a.len());
    debug_assert_eq!(acc.len(), b.len());
    debug_assert_eq!(acc.len(), c.len());
    match acc.len() {
        n if n >= 16 => axpy3_b::<16>(acc, alpha, a, b, c),
        n if n >= 8 => axpy3_b::<8>(acc, alpha, a, b, c),
        _ => axpy3_b::<4>(acc, alpha, a, b, c),
    }
}

/// `dst[i] = alpha * a[i] * b[i]` — assigning form of [`axpy2`].
#[adatm::hot]
#[inline]
pub fn scale2(dst: &mut [f64], alpha: f64, a: &[f64], b: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    match dst.len() {
        n if n >= 16 => scale2_b::<16>(dst, alpha, a, b),
        n if n >= 8 => scale2_b::<8>(dst, alpha, a, b),
        _ => scale2_b::<4>(dst, alpha, a, b),
    }
}

/// `dst[i] = alpha * a[i] * b[i] * c[i]` — assigning form of [`axpy3`].
#[adatm::hot]
#[inline]
pub fn scale3(dst: &mut [f64], alpha: f64, a: &[f64], b: &[f64], c: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    debug_assert_eq!(dst.len(), c.len());
    match dst.len() {
        n if n >= 16 => scale3_b::<16>(dst, alpha, a, b, c),
        n if n >= 8 => scale3_b::<8>(dst, alpha, a, b, c),
        _ => scale3_b::<4>(dst, alpha, a, b, c),
    }
}

/// `acc[i] += a[i] * b[i] * c[i]` — the fused two-delta dimension-tree
/// contribution (`parent row ⊙ u_1 ⊙ u_2`), left-to-right.
#[adatm::hot]
#[inline]
pub fn muladd3(acc: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    debug_assert_eq!(acc.len(), a.len());
    debug_assert_eq!(acc.len(), b.len());
    debug_assert_eq!(acc.len(), c.len());
    match acc.len() {
        n if n >= 16 => muladd3_b::<16>(acc, a, b, c),
        n if n >= 8 => muladd3_b::<8>(acc, a, b, c),
        _ => muladd3_b::<4>(acc, a, b, c),
    }
}

#[inline(always)]
fn mul_assign_b<const B: usize>(acc: &mut [f64], src: &[f64]) {
    let mut ac = acc.chunks_exact_mut(B);
    let mut sc = src.chunks_exact(B);
    for (a, s) in ac.by_ref().zip(sc.by_ref()) {
        for i in 0..B {
            a[i] *= s[i];
        }
    }
    for (a, s) in ac.into_remainder().iter_mut().zip(sc.remainder()) {
        *a *= *s;
    }
}

#[inline(always)]
fn add_assign_b<const B: usize>(acc: &mut [f64], src: &[f64]) {
    let mut ac = acc.chunks_exact_mut(B);
    let mut sc = src.chunks_exact(B);
    for (a, s) in ac.by_ref().zip(sc.by_ref()) {
        for i in 0..B {
            a[i] += s[i];
        }
    }
    for (a, s) in ac.into_remainder().iter_mut().zip(sc.remainder()) {
        *a += *s;
    }
}

#[inline(always)]
fn axpy_b<const B: usize>(acc: &mut [f64], alpha: f64, src: &[f64]) {
    let mut ac = acc.chunks_exact_mut(B);
    let mut sc = src.chunks_exact(B);
    for (a, s) in ac.by_ref().zip(sc.by_ref()) {
        for i in 0..B {
            a[i] += alpha * s[i];
        }
    }
    for (a, s) in ac.into_remainder().iter_mut().zip(sc.remainder()) {
        *a += alpha * *s;
    }
}

#[inline(always)]
fn scale_b<const B: usize>(dst: &mut [f64], alpha: f64, src: &[f64]) {
    let mut dc = dst.chunks_exact_mut(B);
    let mut sc = src.chunks_exact(B);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        for i in 0..B {
            d[i] = alpha * s[i];
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d = alpha * *s;
    }
}

#[inline(always)]
fn mul_into_b<const B: usize>(dst: &mut [f64], a: &[f64], b: &[f64]) {
    let mut dc = dst.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    for ((d, x), y) in dc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        for i in 0..B {
            d[i] = x[i] * y[i];
        }
    }
    for ((d, x), y) in dc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *d = *x * *y;
    }
}

#[inline(always)]
fn muladd_assign_b<const B: usize>(acc: &mut [f64], a: &[f64], b: &[f64]) {
    let mut cc = acc.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    for ((c, x), y) in cc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        for i in 0..B {
            c[i] += x[i] * y[i];
        }
    }
    for ((c, x), y) in cc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *c += *x * *y;
    }
}

#[inline(always)]
fn axpy2_b<const B: usize>(acc: &mut [f64], alpha: f64, a: &[f64], b: &[f64]) {
    let mut cc = acc.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    for ((c, x), y) in cc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        for i in 0..B {
            c[i] += alpha * x[i] * y[i];
        }
    }
    for ((c, x), y) in cc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *c += alpha * *x * *y;
    }
}

#[inline(always)]
fn axpy3_b<const B: usize>(acc: &mut [f64], alpha: f64, a: &[f64], b: &[f64], c: &[f64]) {
    let mut oc = acc.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    let mut cc = c.chunks_exact(B);
    for (((o, x), y), z) in oc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()).zip(cc.by_ref()) {
        for i in 0..B {
            o[i] += alpha * x[i] * y[i] * z[i];
        }
    }
    for (((o, x), y), z) in
        oc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()).zip(cc.remainder())
    {
        *o += alpha * *x * *y * *z;
    }
}

#[inline(always)]
fn scale2_b<const B: usize>(dst: &mut [f64], alpha: f64, a: &[f64], b: &[f64]) {
    let mut dc = dst.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    for ((d, x), y) in dc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        for i in 0..B {
            d[i] = alpha * x[i] * y[i];
        }
    }
    for ((d, x), y) in dc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *d = alpha * *x * *y;
    }
}

#[inline(always)]
fn scale3_b<const B: usize>(dst: &mut [f64], alpha: f64, a: &[f64], b: &[f64], c: &[f64]) {
    let mut dc = dst.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    let mut cc = c.chunks_exact(B);
    for (((d, x), y), z) in dc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()).zip(cc.by_ref()) {
        for i in 0..B {
            d[i] = alpha * x[i] * y[i] * z[i];
        }
    }
    for (((d, x), y), z) in
        dc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()).zip(cc.remainder())
    {
        *d = alpha * *x * *y * *z;
    }
}

#[inline(always)]
fn muladd3_b<const B: usize>(acc: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    let mut oc = acc.chunks_exact_mut(B);
    let mut ac = a.chunks_exact(B);
    let mut bc = b.chunks_exact(B);
    let mut cc = c.chunks_exact(B);
    for (((o, x), y), z) in oc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()).zip(cc.by_ref()) {
        for i in 0..B {
            o[i] += x[i] * y[i] * z[i];
        }
    }
    for (((o, x), y), z) in
        oc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()).zip(cc.remainder())
    {
        *o += *x * *y * *z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The awkward lengths the parity suite cares about: below one block,
    /// straddling remainders of every dispatch tier, and exact multiples.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 64, 67];

    fn v(len: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values with varied magnitudes so
        // bitwise comparisons are meaningful.
        (0..len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                ((x >> 11) as f64 / (1u64 << 53) as f64) * 3.5 - 1.7
            })
            .collect()
    }

    #[test]
    fn mul_assign_bitwise_matches_scalar() {
        for &n in LENS {
            let (a0, b) = (v(n, 1), v(n, 2));
            let mut want = a0.clone();
            want.iter_mut().zip(&b).for_each(|(x, y)| *x *= y);
            let mut got = a0.clone();
            mul_assign(&mut got, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn add_assign_bitwise_matches_scalar() {
        for &n in LENS {
            let (a0, b) = (v(n, 3), v(n, 4));
            let mut want = a0.clone();
            want.iter_mut().zip(&b).for_each(|(x, y)| *x += y);
            let mut got = a0.clone();
            add_assign(&mut got, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn axpy_bitwise_matches_scalar() {
        for &n in LENS {
            let (a0, b) = (v(n, 5), v(n, 6));
            let alpha = 0.37;
            let mut want = a0.clone();
            want.iter_mut().zip(&b).for_each(|(x, y)| *x += alpha * y);
            let mut got = a0.clone();
            axpy(&mut got, alpha, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn scale_bitwise_matches_scalar() {
        for &n in LENS {
            let b = v(n, 7);
            let alpha = -2.25;
            let want: Vec<f64> = b.iter().map(|y| alpha * y).collect();
            let mut got = v(n, 8);
            scale(&mut got, alpha, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn mul_into_bitwise_matches_scalar() {
        for &n in LENS {
            let (a, b) = (v(n, 9), v(n, 10));
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            let mut got = v(n, 11);
            mul_into(&mut got, &a, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn muladd_assign_bitwise_matches_scalar() {
        for &n in LENS {
            let (c0, a, b) = (v(n, 12), v(n, 13), v(n, 14));
            let mut want = c0.clone();
            want.iter_mut().zip(a.iter().zip(&b)).for_each(|(c, (x, y))| *c += x * y);
            let mut got = c0.clone();
            muladd_assign(&mut got, &a, &b);
            assert_eq!(got, want, "len {n}");
        }
    }

    #[test]
    fn fused_multi_operand_ops_bitwise_match_unfused_sequences() {
        // The fused ops must reproduce the exact rounding of the unfused
        // scale/mul_assign/add sequences they replace (left-to-right).
        for &n in LENS {
            let (a, b, c) = (v(n, 30), v(n, 31), v(n, 32));
            let alpha = 1.75;

            let mut want = vec![0.0; n];
            let mut srow = v(n, 33);
            scale(&mut srow, alpha, &a);
            mul_assign(&mut srow, &b);
            add_assign(&mut want, &srow);
            let mut got = vec![0.0; n];
            axpy2(&mut got, alpha, &a, &b);
            assert_eq!(got, want, "axpy2 len {n}");
            let mut got2 = v(n, 34);
            scale2(&mut got2, alpha, &a, &b);
            assert_eq!(got2, srow, "scale2 len {n}");

            let mut srow3 = srow.clone();
            mul_assign(&mut srow3, &c);
            let mut want3 = vec![0.0; n];
            add_assign(&mut want3, &srow3);
            let mut got3 = vec![0.0; n];
            axpy3(&mut got3, alpha, &a, &b, &c);
            assert_eq!(got3, want3, "axpy3 len {n}");
            let mut got3s = v(n, 35);
            scale3(&mut got3s, alpha, &a, &b, &c);
            assert_eq!(got3s, srow3, "scale3 len {n}");

            // muladd3: acc += a*b*c, left-to-right.
            let acc0 = v(n, 36);
            let mut want4 = acc0.clone();
            let mut s = a.clone();
            mul_assign(&mut s, &b);
            mul_assign(&mut s, &c);
            add_assign(&mut want4, &s);
            let mut got4 = acc0.clone();
            muladd3(&mut got4, &a, &b, &c);
            assert_eq!(got4, want4, "muladd3 len {n}");
        }
    }

    #[test]
    fn remainder_path_is_pure_tail() {
        // A 17-length op must treat element 16 exactly like a standalone
        // 1-length op would: the remainder path is the same scalar code.
        let a = v(17, 20);
        let b = v(17, 21);
        let mut full = a.clone();
        mul_assign(&mut full, &b);
        let mut tail = vec![a[16]];
        mul_assign(&mut tail, &b[16..]);
        assert_eq!(full[16].to_bits(), tail[0].to_bits());
    }
}
