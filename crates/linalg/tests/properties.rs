//! Property-based tests of the dense kernels on random matrices.

use adatm_linalg::{jacobi_eigh, pinv_sym, thin_qr, Mat, PINV_RCOND};
use proptest::prelude::*;

/// Strategy: a random matrix with bounded shape and entries.
fn arb_mat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_vec(m, n, data))
    })
}

/// Strategy: a random symmetric PSD matrix (`A^T A` form).
fn arb_psd(max_n: usize) -> impl Strategy<Value = Mat> {
    arb_mat(2 * max_n, max_n).prop_map(|a| a.gram())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gram_is_symmetric_psd(a in arb_mat(12, 6)) {
        let g = a.gram();
        prop_assert!(g.max_abs_diff(&g.transpose()) < 1e-10);
        let e = jacobi_eigh(&g);
        let scale = g.fro_norm().max(1.0);
        for &w in &e.values {
            prop_assert!(w > -1e-10 * scale, "negative eigenvalue {w}");
        }
    }

    #[test]
    fn matmul_is_associative(
        adata in proptest::collection::vec(-3.0f64..3.0, 5 * 4),
        bdata in proptest::collection::vec(-3.0f64..3.0, 4 * 3),
        cdata in proptest::collection::vec(-3.0f64..3.0, 3 * 6),
    ) {
        let a = Mat::from_vec(5, 4, adata);
        let b = Mat::from_vec(4, 3, bdata);
        let c = Mat::from_vec(3, 6, cdata);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_matmul(
        adata in proptest::collection::vec(-3.0f64..3.0, 5 * 4),
        bdata in proptest::collection::vec(-3.0f64..3.0, 4 * 3),
    ) {
        let a = Mat::from_vec(5, 4, adata);
        let b = Mat::from_vec(4, 3, bdata);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-10);
    }

    #[test]
    fn eigh_reconstructs(a in arb_psd(6)) {
        let e = jacobi_eigh(&a);
        let n = a.nrows();
        let mut d = Mat::zeros(n, n);
        for (i, &w) in e.values.iter().enumerate() {
            d.set(i, i, w);
        }
        let back = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        let tol = 1e-8 * a.fro_norm().max(1.0);
        prop_assert!(back.max_abs_diff(&a) < tol);
    }

    #[test]
    fn pinv_penrose_conditions(h in arb_psd(5)) {
        let p = pinv_sym(&h, PINV_RCOND);
        let tol = 1e-6 * h.fro_norm().max(1.0);
        prop_assert!(h.matmul(&p).matmul(&h).max_abs_diff(&h) < tol);
        let ptol = 1e-6 * p.fro_norm().max(1.0);
        prop_assert!(p.matmul(&h).matmul(&p).max_abs_diff(&p) < ptol);
    }

    #[test]
    fn qr_reconstruction_and_orthogonality(a in arb_mat(15, 5)) {
        let qr = thin_qr(&a);
        let back = qr.q.matmul(&qr.r);
        let tol = 1e-8 * a.fro_norm().max(1.0);
        prop_assert!(back.max_abs_diff(&a) < tol);
        // Q^T Q is the identity restricted to non-deficient columns.
        let qtq = qr.q.gram();
        for i in 0..qtq.nrows() {
            for j in 0..qtq.ncols() {
                let want = if i == j {
                    let d = qtq.get(i, i);
                    prop_assert!(d.abs() < 1e-8 || (d - 1.0).abs() < 1e-8);
                    continue;
                } else {
                    0.0
                };
                prop_assert!((qtq.get(i, j) - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn normalize_then_rescale_round_trips(a in arb_mat(10, 4)) {
        let mut b = a.clone();
        let scales = b.normalize_cols();
        // Rescale back.
        for i in 0..b.nrows() {
            for (j, &s) in scales.iter().enumerate() {
                let v = b.get(i, j) * s;
                b.set(i, j, v);
            }
        }
        prop_assert!(b.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn col_norms_match_gram_diagonal(a in arb_mat(10, 5)) {
        let g = a.gram();
        for (j, n) in a.col_norms().into_iter().enumerate() {
            prop_assert!((n * n - g.get(j, j)).abs() < 1e-8);
        }
    }
}

/// The ranks the blocked kernels must match a plain scalar loop on,
/// bitwise: 1/3/5/7 are pure-remainder, 17 is one 16-block plus a tail,
/// 33 is two 16-blocks plus a tail.
const PARITY_RANKS: [usize; 6] = [1, 3, 5, 7, 17, 33];

/// Strategy: four equal-length random vectors plus a scalar, at one of
/// the parity ranks.
fn arb_kernel_input() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64)> {
    (0usize..PARITY_RANKS.len()).prop_flat_map(|i| {
        let len = PARITY_RANKS[i];
        let v = || proptest::collection::vec(-8.0f64..8.0, len);
        (v(), v(), v(), v(), -4.0f64..4.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every blocked kernel is bitwise identical to the naive scalar
    /// loop it replaces — the blocking is a pure traversal-order
    /// rewrite, elementwise, with multiplications kept left-to-right.
    #[test]
    fn blocked_kernels_match_scalar_loops_bitwise(input in arb_kernel_input()) {
        use adatm_linalg::kernels;
        let (acc0, a, b, c, alpha) = input;
        let n = acc0.len();
        let check = |got: &[f64], want: &[f64], name: &str| {
            for i in 0..n {
                prop_assert!(
                    got[i].to_bits() == want[i].to_bits(),
                    "{name}[{i}]: {} vs {}", got[i], want[i]
                );
            }
            Ok(())
        };
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] * a[i]).collect();
        kernels::mul_assign(&mut g, &a);
        check(&g, &w, "mul_assign")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + a[i]).collect();
        kernels::add_assign(&mut g, &a);
        check(&g, &w, "add_assign")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + alpha * a[i]).collect();
        kernels::axpy(&mut g, alpha, &a);
        check(&g, &w, "axpy")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| alpha * a[i]).collect();
        kernels::scale(&mut g, alpha, &a);
        check(&g, &w, "scale")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| a[i] * b[i]).collect();
        kernels::mul_into(&mut g, &a, &b);
        check(&g, &w, "mul_into")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + a[i] * b[i]).collect();
        kernels::muladd_assign(&mut g, &a, &b);
        check(&g, &w, "muladd_assign")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + alpha * a[i] * b[i]).collect();
        kernels::axpy2(&mut g, alpha, &a, &b);
        check(&g, &w, "axpy2")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + alpha * a[i] * b[i] * c[i]).collect();
        kernels::axpy3(&mut g, alpha, &a, &b, &c);
        check(&g, &w, "axpy3")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| alpha * a[i] * b[i]).collect();
        kernels::scale2(&mut g, alpha, &a, &b);
        check(&g, &w, "scale2")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| alpha * a[i] * b[i] * c[i]).collect();
        kernels::scale3(&mut g, alpha, &a, &b, &c);
        check(&g, &w, "scale3")?;
        let mut g = acc0.clone();
        let w: Vec<f64> = (0..n).map(|i| acc0[i] + a[i] * b[i] * c[i]).collect();
        kernels::muladd3(&mut g, &a, &b, &c);
        check(&g, &w, "muladd3")?;
    }

    /// The remainder path touches only the tail: a kernel applied to a
    /// length-17 slice leaves bits of the first 16 lanes exactly equal
    /// to the same kernel applied to the 16-prefix alone.
    #[test]
    fn remainder_never_perturbs_block_lanes(input in arb_kernel_input()) {
        use adatm_linalg::kernels;
        let (acc0, a, _b, _c, alpha) = input;
        let n = acc0.len();
        let blocked = n - n % 4;
        let mut full = acc0.clone();
        kernels::axpy(&mut full, alpha, &a);
        let mut prefix = acc0[..blocked].to_vec();
        kernels::axpy(&mut prefix, alpha, &a[..blocked]);
        for i in 0..blocked {
            prop_assert!(full[i].to_bits() == prefix[i].to_bits());
        }
    }
}
