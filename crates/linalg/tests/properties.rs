//! Property-based tests of the dense kernels on random matrices.

use adatm_linalg::{jacobi_eigh, pinv_sym, thin_qr, Mat, PINV_RCOND};
use proptest::prelude::*;

/// Strategy: a random matrix with bounded shape and entries.
fn arb_mat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_vec(m, n, data))
    })
}

/// Strategy: a random symmetric PSD matrix (`A^T A` form).
fn arb_psd(max_n: usize) -> impl Strategy<Value = Mat> {
    arb_mat(2 * max_n, max_n).prop_map(|a| a.gram())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gram_is_symmetric_psd(a in arb_mat(12, 6)) {
        let g = a.gram();
        prop_assert!(g.max_abs_diff(&g.transpose()) < 1e-10);
        let e = jacobi_eigh(&g);
        let scale = g.fro_norm().max(1.0);
        for &w in &e.values {
            prop_assert!(w > -1e-10 * scale, "negative eigenvalue {w}");
        }
    }

    #[test]
    fn matmul_is_associative(
        adata in proptest::collection::vec(-3.0f64..3.0, 5 * 4),
        bdata in proptest::collection::vec(-3.0f64..3.0, 4 * 3),
        cdata in proptest::collection::vec(-3.0f64..3.0, 3 * 6),
    ) {
        let a = Mat::from_vec(5, 4, adata);
        let b = Mat::from_vec(4, 3, bdata);
        let c = Mat::from_vec(3, 6, cdata);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_matmul(
        adata in proptest::collection::vec(-3.0f64..3.0, 5 * 4),
        bdata in proptest::collection::vec(-3.0f64..3.0, 4 * 3),
    ) {
        let a = Mat::from_vec(5, 4, adata);
        let b = Mat::from_vec(4, 3, bdata);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-10);
    }

    #[test]
    fn eigh_reconstructs(a in arb_psd(6)) {
        let e = jacobi_eigh(&a);
        let n = a.nrows();
        let mut d = Mat::zeros(n, n);
        for (i, &w) in e.values.iter().enumerate() {
            d.set(i, i, w);
        }
        let back = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        let tol = 1e-8 * a.fro_norm().max(1.0);
        prop_assert!(back.max_abs_diff(&a) < tol);
    }

    #[test]
    fn pinv_penrose_conditions(h in arb_psd(5)) {
        let p = pinv_sym(&h, PINV_RCOND);
        let tol = 1e-6 * h.fro_norm().max(1.0);
        prop_assert!(h.matmul(&p).matmul(&h).max_abs_diff(&h) < tol);
        let ptol = 1e-6 * p.fro_norm().max(1.0);
        prop_assert!(p.matmul(&h).matmul(&p).max_abs_diff(&p) < ptol);
    }

    #[test]
    fn qr_reconstruction_and_orthogonality(a in arb_mat(15, 5)) {
        let qr = thin_qr(&a);
        let back = qr.q.matmul(&qr.r);
        let tol = 1e-8 * a.fro_norm().max(1.0);
        prop_assert!(back.max_abs_diff(&a) < tol);
        // Q^T Q is the identity restricted to non-deficient columns.
        let qtq = qr.q.gram();
        for i in 0..qtq.nrows() {
            for j in 0..qtq.ncols() {
                let want = if i == j {
                    let d = qtq.get(i, i);
                    prop_assert!(d.abs() < 1e-8 || (d - 1.0).abs() < 1e-8);
                    continue;
                } else {
                    0.0
                };
                prop_assert!((qtq.get(i, j) - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn normalize_then_rescale_round_trips(a in arb_mat(10, 4)) {
        let mut b = a.clone();
        let scales = b.normalize_cols();
        // Rescale back.
        for i in 0..b.nrows() {
            for (j, &s) in scales.iter().enumerate() {
                let v = b.get(i, j) * s;
                b.set(i, j, v);
            }
        }
        prop_assert!(b.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn col_norms_match_gram_diagonal(a in arb_mat(10, 5)) {
        let g = a.gram();
        for (j, n) in a.col_norms().into_iter().enumerate() {
            prop_assert!((n * n - g.get(j, j)).abs() < 1e-8);
        }
    }
}
