//! Offline drop-in subset of the `proptest` API.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace replaces its `proptest` dev-dependency with this shim
//! (see `[workspace.dependencies]` in the root manifest). It provides the
//! surface the property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges, tuples of strategies, and [`Just`];
//! * [`collection::vec`] with exact or ranged lengths;
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, overridable with
//! `PROPTEST_SEED`) and failing cases are **not shrunk** — the failure
//! message reports the case number and seed so a run is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-run configuration (subset of upstream's `ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The test-runner internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use super::ProptestConfig;

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed; the case (and test) fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    /// Deterministic xorshift* RNG driving input generation.
    ///
    /// Seeded from the test's name so every test draws an independent,
    /// stable stream; `PROPTEST_SEED` perturbs all streams at once for
    /// exploring alternative inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test, honoring `PROPTEST_SEED`.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, mixed with the optional env seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Some(s) = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok())
            {
                h ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            TestRng { state: h | 1 }
        }

        /// The current seed, reported on failure for reproduction.
        pub fn seed(&self) -> u64 {
            self.state
        }

        /// Next 64 uniform bits (xorshift64*).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform draw from `[0, span)`, `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: how to generate random values of a type.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (subset of upstream's `Strategy`;
    /// there is no value tree / shrinking — `new_value` samples directly).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Builds a second strategy from each generated value and samples
        /// it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// A boxed strategy placeholder kept for signature familiarity.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Fn(&mut TestRng) -> T>,
        _marker: PhantomData<T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// Boxing adapter mirroring upstream's `Strategy::boxed`.
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy { inner: Box::new(move |rng| s.new_value(rng)), _marker: PhantomData }
    }
}

/// Collection strategies (subset of upstream's `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`vec`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec length range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy yielding vectors of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub use strategy::{Just, Strategy};

/// Everything a `use proptest::prelude::*` import expects.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::TestCaseError;
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds; with a format string the
/// message is used verbatim, otherwise the condition's source is shown.
#[macro_export]
macro_rules! prop_assert {
    // `if cond {} else` (not `if !cond`) so comparisons on partially
    // ordered operands don't trip clippy::neg_cmp_op_on_partial_ord at
    // every call site.
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` (not `let`) so temporaries in the operands live through
        // the comparison, mirroring std's `assert_eq!` expansion.
        match (&$left, &$right) {
            (left, right) => {
                if !(left == right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            concat!(
                                "assertion failed: `",
                                stringify!($left),
                                " == ",
                                stringify!($right),
                                "`\n  left: `{:?}`\n right: `{:?}`"
                            ),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn sum_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $(let $arg = $strat;)+
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                let __seed = __rng.seed();
                $(let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.cases.saturating_mul(16).saturating_add(256),
                            "too many prop_assume rejections ({}): {}",
                            __rejected, __why
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "property failed after {} passing case(s) \
                             (rng state {:#x}):\n{}",
                            __passed, __seed, __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::collection;
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..500 {
            let a = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&a));
            let b = (2usize..=5).new_value(&mut rng);
            assert!((2..=5).contains(&b));
            let c = (-2.0f64..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&c));
            let _ = (0u64..u64::MAX).new_value(&mut rng);
        }
    }

    #[test]
    fn vec_lengths_obey_size_spec() {
        let mut rng = TestRng::for_test("vec_lengths_obey_size_spec");
        let exact = collection::vec(0u64..10, 4usize);
        let ranged = collection::vec(0u64..10, 1..=6usize);
        for _ in 0..200 {
            assert_eq!(exact.new_value(&mut rng).len(), 4);
            let n = ranged.new_value(&mut rng).len();
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0usize..100, n)));
        let mut rng = TestRng::for_test("flat_map_threads_dependent_values");
        for _ in 0..100 {
            let (n, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assertions_pass(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200, "sum {} out of range", a + b);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_tuple_and_map_strategies(
            pair in (0usize..10, -1.0f64..1.0),
            doubled in (0usize..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!(pair.1.abs() <= 1.0);
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
