//! Offline drop-in subset of the `criterion` API.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace replaces its `criterion` dev-dependency with this shim
//! (see `[workspace.dependencies]` in the root manifest). It keeps the
//! bench targets compiling and producing useful wall-clock numbers:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per sample, the closure runs in a
//! timed batch whose iteration count targets ~20 ms, and the report gives
//! min / median / mean per-iteration time over the samples. There is no
//! statistical regression machinery, plotting, or result persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of upstream's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, sample_size: 100 }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Ends the group. (No cross-benchmark analysis in this shim.)
    pub fn finish(&mut self) {}
}

/// Times a closure over repeated batches (subset of upstream's
/// `Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: calibrates a batch size targeting ~20 ms, then
    /// records `sample_size` timed batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration: grow the batch until it takes long enough to time.
        let target = Duration::from_millis(20);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= target || iters >= 1 << 20 {
                break;
            }
            iters = if took.is_zero() {
                iters * 16
            } else {
                // Aim straight at the target, padded 20%, at least doubling.
                let scale = target.as_secs_f64() / took.as_secs_f64() * 1.2;
                (iters * 2).max((iters as f64 * scale) as u64)
            };
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            println!("  {id}: no samples (Bencher::iter never called)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {id}: min {} / median {} / mean {}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export point used by upstream-style bench code; the shim's
/// `black_box` is just [`std::hint::black_box`].
pub use std::hint::black_box;

/// Bundles benchmark functions into one runner function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        group.finish();
    }

    criterion_group!(selftest, bench_trivial);

    #[test]
    fn group_runs_and_reports() {
        selftest();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 us");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
