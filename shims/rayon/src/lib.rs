//! Offline drop-in subset of the `rayon` API.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace replaces its `rayon` dependency with this shim (see
//! `[workspace.dependencies]` in the root manifest). It reproduces exactly
//! the combinator surface the kernels use — `par_iter` / `into_par_iter`
//! (ranges and slices), `map`, `map_init`, `enumerate`, `zip`, `step_by`,
//! `fold` + `reduce`, `for_each`, `collect`, `par_chunks`,
//! `par_chunks_mut`, `par_sort_unstable_by` — with real data parallelism
//! via [`std::thread::scope`]: each terminal operation splits its items
//! into one contiguous block per worker and joins in order, so outputs are
//! position-stable just as with rayon.
//!
//! Differences from rayon, none observable by this workspace:
//!
//! * items are materialized before the terminal operation (the kernels
//!   iterate slices/ranges whose item collections are small relative to
//!   the data they touch);
//! * work is split statically, not stolen — fine for the regular,
//!   equal-cost chunks the kernels produce;
//! * [`ThreadPool::install`] only scopes the thread *count* (a thread-local
//!   override read by [`current_num_threads`]); it does not pin OS threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads terminal operations will use: the installed
/// pool's size if inside [`ThreadPool::install`], else `RAYON_NUM_THREADS`
/// if set, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(Cell::get) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced;
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped-thread-count "pool".
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": a scoped thread-count override.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] reporting this pool's size.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `f` over `items`, one contiguous block per worker, preserving item
/// order in the result. The sequential path is taken for tiny inputs or a
/// single worker.
fn run_map<T: Send, U: Send, F>(items: Vec<T>, f: F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let chunk = items.len().div_ceil(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        blocks.push(std::mem::replace(&mut rest, tail));
    }
    blocks.push(rest);
    let fref = &f;
    let outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(fref).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shim worker panicked")).collect()
    });
    outputs.into_iter().flatten().collect()
}

/// Runs `fold` per worker block (seeded by `identity`) and returns the
/// per-block accumulators in block order.
fn run_fold<T: Send, A: Send, ID, F>(items: Vec<T>, identity: ID, fold: F) -> Vec<A>
where
    ID: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return vec![items.into_iter().fold(identity(), fold)];
    }
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let chunk = items.len().div_ceil(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        blocks.push(std::mem::replace(&mut rest, tail));
    }
    blocks.push(rest);
    let (idref, foldref) = (&identity, &fold);
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().fold(idref(), foldref)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shim worker panicked")).collect()
    })
}

/// An eager parallel iterator over materialized items.
///
/// All adapters preserve item order; terminal operations split the items
/// into per-worker blocks.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (lazily; applied at the terminal op).
    pub fn map<U: Send, F>(self, f: F) -> MapIter<T, F>
    where
        F: Fn(T) -> U + Sync,
    {
        MapIter { items: self.items, f }
    }

    /// Like `map` but with a per-worker scratch state built by `init`.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> MapInitIter<T, INIT, F>
    where
        S: Send,
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        MapInitIter { items: self.items, init, f }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Zips with another parallel iterator, truncating to the shorter.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    /// Keeps every `step`-th item starting from the first.
    pub fn step_by(self, step: usize) -> ParIter<T> {
        ParIter { items: self.items.into_iter().step_by(step).collect() }
    }

    /// Per-worker fold producing one accumulator per block.
    pub fn fold<A, ID, F>(self, identity: ID, fold: F) -> FoldIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, T) -> A + Sync,
    {
        FoldIter { accs: run_fold(self.items, identity, fold) }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = run_map(self.items, f);
    }

    /// Collects the items (parallelism already happened upstream).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazy `map` adapter; the closure runs in parallel at the terminal op.
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F> MapIter<T, F>
where
    F: Fn(T) -> U + Sync,
{
    /// Runs the map in parallel and collects the results in item order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_map(self.items, self.f).into_iter().collect()
    }

    /// Runs the map in parallel, discarding results.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        let _ = run_map(self.items, move |t| g(f(t)));
    }

    /// Per-worker fold over the mapped items.
    pub fn fold<A, ID, G>(self, identity: ID, fold: G) -> FoldIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, U) -> A + Sync,
    {
        let f = self.f;
        FoldIter { accs: run_fold(self.items, identity, move |acc, t| fold(acc, f(t))) }
    }

    /// Reduces the mapped items directly.
    pub fn reduce<ID, G>(self, identity: ID, reduce: G) -> U
    where
        ID: Fn() -> U + Sync,
        G: Fn(U, U) -> U + Sync,
    {
        run_map(self.items, self.f).into_iter().fold(identity(), reduce)
    }

    /// Sums the mapped items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        run_map(self.items, self.f).into_iter().sum()
    }
}

/// Lazy `map_init` adapter: one scratch state per worker block.
pub struct MapInitIter<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T: Send, S, U: Send, INIT, F> MapInitIter<T, INIT, F>
where
    S: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    /// Runs the map in parallel and collects results in item order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let MapInitIter { items, init, f } = self;
        let workers = current_num_threads().min(items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            let mut state = init();
            return items.into_iter().map(|t| f(&mut state, t)).collect();
        }
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let chunk = items.len().div_ceil(workers);
        let mut rest = items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            blocks.push(std::mem::replace(&mut rest, tail));
        }
        blocks.push(rest);
        let (initref, fref) = (&init, &f);
        let outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .map(|block| {
                    scope.spawn(move || {
                        let mut state = initref();
                        block.into_iter().map(|t| fref(&mut state, t)).collect::<Vec<U>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shim worker panicked")).collect()
        });
        outputs.into_iter().flatten().collect()
    }
}

/// Result of a per-worker `fold`: one accumulator per block.
pub struct FoldIter<A> {
    accs: Vec<A>,
}

impl<A: Send> FoldIter<A> {
    /// Combines the per-block accumulators (sequentially — there are at
    /// most `current_num_threads()` of them).
    pub fn reduce<ID, F>(self, identity: ID, reduce: F) -> A
    where
        ID: Fn() -> A + Sync,
        F: Fn(A, A) -> A + Sync,
    {
        self.accs.into_iter().fold(identity(), reduce)
    }

    /// Collects the per-block accumulators.
    pub fn collect<C: FromIterator<A>>(self) -> C {
        self.accs.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] (subset of rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared references (subset of rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Parallel operations on shared slices (subset of rayon's
/// `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// Parallel operations on mutable slices (subset of rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;

    /// Unstable comparator sort. Sequential in this shim — callers use it
    /// as a drop-in for `sort_unstable_by` above a size threshold, and a
    /// sequential sort is semantically identical.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        self.sort_unstable_by(compare);
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("shim worker panicked"))
    })
}

/// The traits and types a `use rayon::prelude::*` import expects.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_init_matches_sequential() {
        let out: Vec<usize> =
            (0..257usize).into_par_iter().map_init(|| 10usize, |s, x| *s + x).collect();
        assert_eq!(out, (0..257).map(|x| 10 + x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_sums_everything_once() {
        let total: u64 = (0..10_000usize)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x as u64)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn step_by_then_fold_covers_stepped_items() {
        let picked: Vec<usize> = (0..100usize).into_par_iter().step_by(17).collect();
        assert_eq!(picked, vec![0, 17, 34, 51, 68, 85]);
    }

    #[test]
    fn chunks_mut_zip_writes_disjointly() {
        let src: Vec<f64> = (0..64).map(f64::from).collect();
        let mut dst = vec![0.0f64; 64];
        dst.par_chunks_mut(8).zip(src.par_chunks(8)).for_each(|(d, s)| d.copy_from_slice(s));
        assert_eq!(dst, src);
    }

    #[test]
    fn chunks_mut_enumerate_sees_block_indices() {
        let mut v = vec![0usize; 40];
        v.par_chunks_mut(16).enumerate().for_each(|(ci, block)| {
            for x in block.iter_mut() {
                *x = ci;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[16], 1);
        assert_eq!(v[32], 2);
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        let mut a: Vec<u32> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let mut b = a.clone();
        a.par_sort_unstable_by(|x, y| x.cmp(y));
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn install_scopes_thread_count() {
        let n = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("infallible")
            .install(current_num_threads);
        assert_eq!(n, 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
