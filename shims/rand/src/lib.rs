//! Offline drop-in subset of the `rand` crate API.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace replaces its `rand` dependency with this shim (see
//! `[workspace.dependencies]` in the root manifest). Only the API surface
//! the workspace actually uses is provided:
//!
//! * [`SeedableRng::seed_from_u64`] + [`rngs::StdRng`] — a deterministic
//!   xoshiro256++ generator seeded via SplitMix64 (the same construction
//!   real `rand` uses for small-seed expansion);
//! * [`Rng::gen`] / [`Rng::gen_range`] for `f64` and the integer ranges the
//!   generators draw from;
//! * [`distributions::Uniform`] over `f64` and the [`distributions::Distribution`]
//!   trait object the samplers implement.
//!
//! Streams are deterministic per seed but intentionally **not** bit-equal
//! to upstream `rand`; nothing in the workspace depends on the exact
//! stream, only on seeded reproducibility and reasonable uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as upstream does.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values drawable with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded integer draw (Lemire-style multiply-shift is
/// overkill here; modulo bias at 2^64 scale is far below every use).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    // Widening multiply keeps the draw uniform to within 2^-64.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience draws on any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic; statistically strong enough for the
    /// synthetic-tensor generators and randomized initializations here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (subset of `rand::distributions`).
pub mod distributions {
    /// A distribution over values of type `T` (same shape as upstream).
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `f64` interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
    }

    impl Uniform<f64> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.lo + u * (self.hi - self.lo)
        }
    }
}

/// Prelude matching `rand::prelude` closely enough for `use rand::prelude::*`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_draws_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_distribution_in_interval() {
        let d = Uniform::new(f64::MIN_POSITIVE, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(13);
        // Must not overflow the span computation.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
