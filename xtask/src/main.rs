//! Workspace automation entry point (`cargo xtask <command>`).
//!
//! Five commands:
//!
//! `lint` — the static-analysis driver run in CI and before every merge.
//! It chains
//!
//! 1. `cargo fmt --all -- --check` against the committed `rustfmt.toml`,
//! 2. `cargo clippy --workspace --all-targets` with a curated deny-list,
//! 3. the structural passes of the `adatm-analyze` engine (see
//!    [`analyze`]) — hot-path allocation and indexing, kernel
//!    panic-freedom, trace-schema conformance, crate-root
//!    `#![forbid(unsafe_code)]`, and README schema-table drift.
//!
//! `analyze` — the full engine run: the structural passes above plus the
//! exhaustive schedule-disjointness prover. `--bless` regenerates each
//! crate's `analyze.toml` allowances from current counts, `--fix-docs`
//! rewrites the README trace-schema table in place, and `--quick`
//! shrinks the prover universe for local iteration.
//!
//! `bench` — builds and runs the kernel bench driver
//! (`bench_kernels`), writes `BENCH_<date>.json` at the workspace root
//! (or a scratch path in `--smoke` mode), and diffs it against the most
//! recent committed snapshot with a configurable `--tolerance`
//! (see [`bench`]). Regressions are advisory by default (shared CI
//! runners are noisy); `--fail-on-regression` makes them exit non-zero.
//!
//! `calibrate` — builds and runs the kernel calibration probe, writing
//! the measured `KernelProfile` (ns per work unit per kernel class, at
//! 1 and N threads) to `PROFILE.txt`. Point `ADATM_PROFILE` at it to
//! make adaptive planning rank by calibrated wall time. `--check`
//! additionally verifies end-to-end that the calibrated plan's measured
//! per-iteration time stays within 10% of the best fixed tree.
//!
//! `trace-check` — validates an NDJSON trace captured with
//! `adatm --trace <path>`: schema, strictly increasing sequence numbers,
//! and properly paired/nested span events (see [`trace`]). CI runs a
//! small traced CP-ALS and pipes the file through this.
//!
//! Exits non-zero if any enforced step fails.

#![forbid(unsafe_code)]

mod analyze;
mod bench;
mod lints;
mod trace;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Extra clippy lints denied on top of `-D warnings`.
const CLIPPY_DENY: &[&str] =
    &["clippy::dbg_macro", "clippy::todo", "clippy::unimplemented", "clippy::mem_forget"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze_cmd(args),
        Some("bench") => bench_cmd(args),
        Some("calibrate") => calibrate_cmd(args),
        Some("trace-check") => trace_check_cmd(args),
        None | Some("help") | Some("--help") => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  lint         run the static-analysis suite (rustfmt, clippy, engine passes)\n  analyze      run the adatm-analyze engine: lint passes + disjointness prover\n  bench        run the kernel bench suite and diff against the previous BENCH_*.json\n  calibrate    measure per-kernel-class throughput and write PROFILE.txt\n  trace-check  validate an NDJSON trace file against the schema registry\n\ntrace-check usage:\n  cargo xtask trace-check <trace.ndjson>\n\nanalyze flags:\n  --bless     regenerate analyze.toml allowances from current counts\n  --fix-docs  rewrite the README trace-schema table in place\n  --quick     small prover universe (local iteration; CI runs the full one)\n\nbench flags:\n  --smoke               tiny workloads, scratch output (CI regression smoke)\n  --tolerance <pct>     allowed per-key slowdown vs previous snapshot (default 25)\n  --out <path>          override the output snapshot path\n  --fail-on-regression  exit non-zero on regressions (advisory otherwise)\n\ncalibrate flags:\n  --smoke       tiny probe workload (CI)\n  --check       verify the calibrated plan end-to-end (10% gate vs fixed trees)\n  --out <path>  override the profile path (default PROFILE.txt)"
    );
}

/// The workspace root: the parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().unwrap_or(manifest).to_path_buf()
}

fn cargo_bin() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

/// Runs one external step, echoing a pass/fail line. Returns `true` on
/// success.
fn run_step(name: &str, cmd: &mut Command) -> bool {
    println!("xtask: running {name} ...");
    match cmd.status() {
        Ok(status) if status.success() => {
            println!("xtask: {name} ok");
            true
        }
        Ok(status) => {
            eprintln!("xtask: {name} FAILED ({status})");
            false
        }
        Err(err) => {
            eprintln!("xtask: {name} FAILED to start: {err}");
            false
        }
    }
}

/// `cargo xtask analyze [--bless] [--fix-docs] [--quick]`.
fn analyze_cmd(args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = analyze::Options::default();
    for arg in args {
        match arg.as_str() {
            "--bless" => opts.bless = true,
            "--fix-docs" => opts.fix_docs = true,
            "--quick" => opts.quick = true,
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`\n");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if analyze::run(&workspace_root(), opts) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `cargo xtask bench [--smoke] [--tolerance <pct>] [--out <path>]`.
///
/// Builds `bench_kernels` in release mode, snapshots the previous
/// `BENCH_*.json` (if any) *before* running — a same-day rerun
/// overwrites its own file — then runs the driver and compares
/// per-key timings. Smoke snapshots and full snapshots are never
/// compared against each other.
fn bench_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut smoke = false;
    let mut tolerance = 25.0f64;
    let mut fail_on_regression = false;
    let mut out_arg: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--fail-on-regression" => fail_on_regression = true,
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance = v,
                None => {
                    eprintln!("xtask bench: --tolerance requires a numeric percent");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out_arg = Some(PathBuf::from(v)),
                None => {
                    eprintln!("xtask bench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench: unknown flag `{other}`\n");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let cargo = cargo_bin();

    // Capture the latest committed snapshot before the run overwrites it.
    let previous = latest_snapshot(&root);

    if !run_step(
        "build bench_kernels (release)",
        Command::new(&cargo).current_dir(&root).args([
            "build",
            "--release",
            "-p",
            "adatm-bench",
            "--bin",
            "bench_kernels",
        ]),
    ) {
        return ExitCode::FAILURE;
    }

    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            root.join("target").join("bench_smoke.json")
        } else {
            root.join(bench::snapshot_name(&today_utc(), &snapshot_names(&root)))
        }
    });
    let mut driver = Command::new(root.join("target/release/bench_kernels"));
    driver.current_dir(&root).arg(&out_path);
    if smoke {
        driver.env("ADATM_BENCH_SMOKE", "1");
    }
    if !run_step("bench_kernels", &mut driver) {
        return ExitCode::FAILURE;
    }

    let new_json = match std::fs::read_to_string(&out_path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("xtask bench: cannot read fresh snapshot {}: {err}", out_path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(speedup) = bench::parse_speedup(&new_json) {
        println!("xtask bench: coo_sched_speedup = {speedup:.2}x");
    }

    let Some((prev_name, prev_json)) = previous else {
        println!("xtask bench: no previous BENCH_*.json snapshot; baseline recorded");
        return ExitCode::SUCCESS;
    };
    if bench::parse_smoke(&prev_json) != bench::parse_smoke(&new_json) {
        println!("xtask bench: previous snapshot {prev_name} has a different smoke flag; skipping comparison");
        return ExitCode::SUCCESS;
    }
    let regressions = bench::compare(
        &bench::parse_records(&prev_json),
        &bench::parse_records(&new_json),
        tolerance,
    );
    if regressions.is_empty() {
        println!("xtask bench: no regressions vs {prev_name} (tolerance {tolerance:.0}%)");
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("xtask bench: REGRESSION {r}");
        }
        if fail_on_regression {
            eprintln!("xtask bench: FAILED ({} regression(s) vs {prev_name})", regressions.len());
            ExitCode::FAILURE
        } else {
            // Shared runners jitter far beyond any useful tolerance;
            // regressions stay advisory unless the caller opts in.
            eprintln!(
                "xtask bench: {} regression(s) vs {prev_name} (advisory; rerun with --fail-on-regression to enforce)",
                regressions.len()
            );
            ExitCode::SUCCESS
        }
    }
}

/// `cargo xtask calibrate [--smoke] [--check] [--out <path>]`.
///
/// Builds the calibration probe in release mode and runs it; the probe
/// measures per-kernel-class throughput at 1 and N threads and writes
/// the profile. With `--check`, the probe then plans with the fresh
/// profile and fails (exit 1) if the calibrated adaptive backend's
/// measured per-iteration time exceeds the best fixed tree's by more
/// than 10%.
fn calibrate_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut smoke = false;
    let mut check = false;
    let mut out_arg: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => match args.next() {
                Some(v) => out_arg = Some(PathBuf::from(v)),
                None => {
                    eprintln!("xtask calibrate: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask calibrate: unknown flag `{other}`\n");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let cargo = cargo_bin();
    if !run_step(
        "build calibrate (release)",
        Command::new(&cargo).current_dir(&root).args([
            "build",
            "--release",
            "-p",
            "adatm-bench",
            "--bin",
            "calibrate",
        ]),
    ) {
        return ExitCode::FAILURE;
    }

    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            root.join("target").join("profile_smoke.txt")
        } else {
            root.join("PROFILE.txt")
        }
    });
    let mut probe = Command::new(root.join("target/release/calibrate"));
    probe.current_dir(&root).arg(&out_path);
    if smoke {
        probe.env("ADATM_BENCH_SMOKE", "1");
    }
    if check {
        probe.env("ADATM_CALIBRATE_CHECK", "1");
    }
    if run_step("calibrate", &mut probe) {
        println!("xtask calibrate: profile at {}", out_path.display());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Every `BENCH_*.json` file name at the workspace root.
fn snapshot_names(root: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(root) else { return Vec::new() };
    entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect()
}

/// The most recently written `BENCH_*.json` at the workspace root, by
/// file modification time (not filename sort — collision-suffixed
/// same-day snapshots sort before the name they collided with). Returns
/// its file name and contents.
fn latest_snapshot(root: &Path) -> Option<(String, String)> {
    let entries: Vec<(String, u64)> = snapshot_names(root)
        .into_iter()
        .filter_map(|name| {
            let mtime = std::fs::metadata(root.join(&name))
                .and_then(|m| m.modified())
                .ok()?
                .duration_since(std::time::UNIX_EPOCH)
                .ok()?
                .as_secs();
            Some((name, mtime))
        })
        .collect();
    let name = bench::latest_by_mtime(&entries)?;
    let json = std::fs::read_to_string(root.join(&name)).ok()?;
    Some((name, json))
}

/// `cargo xtask trace-check <trace.ndjson>`.
///
/// Validates a trace captured with `adatm --trace <path>`: every line a
/// flat JSON event with increasing `seq`, and every span (including
/// every `cpals.iter` iteration span) properly opened and closed.
fn trace_check_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(path) = args.next() else {
        eprintln!("xtask trace-check: expected a trace file path\n");
        print_usage();
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("xtask trace-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match trace::validate(&text) {
        Ok(summary) => {
            println!(
                "xtask trace-check: {path} ok ({} events, {} spans, {} iterations, {} planner decisions)",
                summary.events, summary.spans, summary.iterations, summary.decisions
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("xtask trace-check: {e}");
            }
            eprintln!("xtask trace-check: {path} FAILED ({} violation(s))", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// Today's UTC date as `YYYY-MM-DD`, via Howard Hinnant's
/// `civil_from_days` — the workspace is offline, so no chrono.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let cargo = cargo_bin();
    let mut ok = true;

    ok &= run_step(
        "rustfmt",
        Command::new(&cargo).current_dir(&root).args(["fmt", "--all", "--", "--check"]),
    );

    let mut clippy = Command::new(&cargo);
    clippy.current_dir(&root).args([
        "clippy",
        "--workspace",
        "--all-targets",
        "--quiet",
        "--",
        "-D",
        "warnings",
    ]);
    for lint in CLIPPY_DENY {
        clippy.args(["-D", lint]);
    }
    ok &= run_step("clippy", &mut clippy);

    ok &= analyze::run_static(&root);

    if ok {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: FAILED");
        ExitCode::FAILURE
    }
}
