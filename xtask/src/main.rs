//! Workspace automation entry point (`cargo xtask <command>`).
//!
//! The one command so far is `lint`: the static-analysis driver run in CI
//! and before every merge. It chains
//!
//! 1. `cargo fmt --all -- --check` against the committed `rustfmt.toml`,
//! 2. `cargo clippy --workspace --all-targets` with a curated deny-list,
//! 3. the source-scan rules in [`lints`] — no `.unwrap()`/`.expect(` in
//!    the kernel crates, `#![forbid(unsafe_code)]` in every crate root,
//!    and an advisory unchecked-indexing count for hot-path files.
//!
//! Exits non-zero if any enforced step fails.

#![forbid(unsafe_code)]

mod lints;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Crates whose non-test sources must stay free of `.unwrap()`/`.expect(`:
/// the kernels that run inside parallel regions and report failures as
/// typed errors instead of panicking.
const KERNEL_CRATES: &[&str] = &["crates/tensor", "crates/dtree", "crates/linalg"];

/// Extra clippy lints denied on top of `-D warnings`.
const CLIPPY_DENY: &[&str] =
    &["clippy::dbg_macro", "clippy::todo", "clippy::unimplemented", "clippy::mem_forget"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        None | Some("help") | Some("--help") => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <command>\n\ncommands:\n  lint    run the static-analysis suite (rustfmt, clippy, source scans)");
}

/// The workspace root: the parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().unwrap_or(manifest).to_path_buf()
}

fn cargo_bin() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

/// Runs one external step, echoing a pass/fail line. Returns `true` on
/// success.
fn run_step(name: &str, cmd: &mut Command) -> bool {
    println!("xtask lint: running {name} ...");
    match cmd.status() {
        Ok(status) if status.success() => {
            println!("xtask lint: {name} ok");
            true
        }
        Ok(status) => {
            eprintln!("xtask lint: {name} FAILED ({status})");
            false
        }
        Err(err) => {
            eprintln!("xtask lint: {name} FAILED to start: {err}");
            false
        }
    }
}

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic output.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Crate roots that must declare `#![forbid(unsafe_code)]`: every member
/// crate's `lib.rs` (or `main.rs` for this binary), including the shims.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src/lib.rs"), root.join("xtask/src/main.rs")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

fn display_rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let cargo = cargo_bin();
    let mut ok = true;

    ok &= run_step(
        "rustfmt",
        Command::new(&cargo).current_dir(&root).args(["fmt", "--all", "--", "--check"]),
    );

    let mut clippy = Command::new(&cargo);
    clippy.current_dir(&root).args([
        "clippy",
        "--workspace",
        "--all-targets",
        "--quiet",
        "--",
        "-D",
        "warnings",
    ]);
    for lint in CLIPPY_DENY {
        clippy.args(["-D", lint]);
    }
    ok &= run_step("clippy", &mut clippy);

    ok &= run_source_scans(&root);

    if ok {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: FAILED");
        ExitCode::FAILURE
    }
}

/// The in-process scans: panicky calls in kernel crates, missing
/// `#![forbid(unsafe_code)]`, and the hot-path indexing advisory.
fn run_source_scans(root: &Path) -> bool {
    let mut findings = Vec::new();

    println!("xtask lint: scanning kernel crates for `.unwrap()` / `.expect(` ...");
    for krate in KERNEL_CRATES {
        for path in rust_sources(&root.join(krate).join("src")) {
            let rel = display_rel(&path, root);
            match std::fs::read_to_string(&path) {
                Ok(src) => findings.extend(lints::scan_panicky_calls(&rel, &src)),
                Err(err) => findings.push(lints::Finding {
                    file: rel,
                    line: 0,
                    message: format!("unreadable source file: {err}"),
                }),
            }
        }
    }

    println!("xtask lint: checking crate roots for `#![forbid(unsafe_code)]` ...");
    for path in crate_roots(root) {
        let rel = display_rel(&path, root);
        match std::fs::read_to_string(&path) {
            Ok(src) => findings.extend(lints::scan_forbid_unsafe(&rel, &src)),
            Err(err) => findings.push(lints::Finding {
                file: rel,
                line: 0,
                message: format!("unreadable crate root: {err}"),
            }),
        }
    }

    println!("xtask lint: hot-path indexing advisory ...");
    for krate in KERNEL_CRATES {
        for path in rust_sources(&root.join(krate).join("src")) {
            let Ok(src) = std::fs::read_to_string(&path) else { continue };
            if lints::is_hot_path_tagged(&src) {
                let n = lints::scan_hot_path_indexing(&src);
                println!(
                    "xtask lint:   {}: {n} direct slice-indexing site(s) (advisory)",
                    display_rel(&path, root)
                );
            }
        }
    }

    if findings.is_empty() {
        println!("xtask lint: source scans ok");
        true
    } else {
        for f in &findings {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: source scans FAILED ({} finding(s))", findings.len());
        false
    }
}
