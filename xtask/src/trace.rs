//! NDJSON trace validation for `cargo xtask trace-check`.
//!
//! Validates a trace file captured with `adatm --trace <path>` against
//! the declared registry in `adatm-trace`'s `schema` module — the same
//! tables the static schema lint in `adatm-analyze` enforces at
//! `event!`/`span_guard!` call sites. Structural rules first (every line
//! a flat JSON object, strictly increasing `seq`, properly paired and
//! nested spans), then per-line schema rules: the event kind or span
//! name must be declared, every required field must be present, no
//! undeclared field may appear, and every value's JSON shape must match
//! the declared [`FieldType`]. Pure functions over strings, unit-tested
//! without the filesystem — same philosophy as [`crate::bench`] and
//! [`crate::lints`].

use adatm_trace::schema::{self, FieldSpec, FieldType};

/// The JSON shape of one parsed field value. Numbers keep their raw
/// text (for `seq`) plus the two shape bits the schema check needs.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JsonVal {
    Str(String),
    Num { text: String, int: bool, neg: bool },
    Bool,
}

/// Whether a parsed value satisfies a declared field type. `F64` also
/// accepts strings: the emitter degrades non-finite floats to JSON
/// strings to keep the line parseable.
fn type_matches(ty: FieldType, v: &JsonVal) -> bool {
    match ty {
        FieldType::Str => matches!(v, JsonVal::Str(_)),
        FieldType::Bool => matches!(v, JsonVal::Bool),
        FieldType::U64 => matches!(v, JsonVal::Num { int: true, neg: false, .. }),
        FieldType::I64 => matches!(v, JsonVal::Num { int: true, .. }),
        FieldType::F64 => matches!(v, JsonVal::Num { .. } | JsonVal::Str(_)),
    }
}

/// Parses one flat NDJSON line into its `(key, value)` pairs. Rejects
/// nesting, `null`, and trailing garbage — the emitter produces none of
/// those.
fn parse_flat(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    if let Some(&esc) = bytes.get(*pos) {
                        *pos += 1;
                        out.push(esc as char);
                    }
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".to_string())
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(format!("not a JSON object: {line}"));
    }
    pos += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut pos);
        if bytes.get(pos) == Some(&b'}') {
            pos += 1;
            break;
        }
        if !fields.is_empty() {
            if bytes.get(pos) != Some(&b',') {
                return Err(format!("expected ',' at byte {pos}"));
            }
            pos += 1;
            skip_ws(&mut pos);
        }
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' after key \"{key}\""));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => JsonVal::Str(parse_string(&mut pos)?),
            Some(b't') if line[pos..].starts_with("true") => {
                pos += 4;
                JsonVal::Bool
            }
            Some(b'f') if line[pos..].starts_with("false") => {
                pos += 5;
                JsonVal::Bool
            }
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = pos;
                while bytes.get(pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    pos += 1;
                }
                let text = &line[start..pos];
                JsonVal::Num {
                    text: text.to_string(),
                    int: !text.contains(['.', 'e', 'E']),
                    neg: text.starts_with('-'),
                }
            }
            _ => return Err(format!("unsupported value for key \"{key}\"")),
        };
        fields.push((key, value));
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage after object: {}", &line[pos..]));
    }
    Ok(fields)
}

/// Checks one line's fields against a declared spec list: no undeclared
/// field, every required field present, every value shape-correct.
/// `reserved` names (emitter-injected) are skipped.
fn check_fields(
    what: &str,
    fields: &[(String, JsonVal)],
    spec: &'static [FieldSpec],
    reserved: &[&str],
    lineno: usize,
    errors: &mut Vec<String>,
) {
    for (name, value) in fields {
        if reserved.contains(&name.as_str()) {
            continue;
        }
        match spec.iter().find(|f| f.name == name) {
            None => errors.push(format!(
                "line {lineno}: {what} carries undeclared field \"{name}\" — declare it in \
                 crates/trace/src/schema.rs"
            )),
            Some(f) if !type_matches(f.ty, value) => errors
                .push(format!("line {lineno}: {what} field \"{name}\" is not a {}", f.ty.name())),
            Some(_) => {}
        }
    }
    for f in spec.iter().filter(|f| f.required) {
        if !fields.iter().any(|(name, _)| name == f.name) {
            errors.push(format!("line {lineno}: {what} is missing required field \"{}\"", f.name));
        }
    }
}

/// What a valid trace contained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total event lines.
    pub events: usize,
    /// Completed span pairs.
    pub spans: usize,
    /// `cpals.iter` spans (outer CP-ALS iterations traced).
    pub iterations: usize,
    /// `planner.decision` events.
    pub decisions: usize,
}

/// Validates `ndjson` and returns a summary, or every violation found.
pub fn validate(ndjson: &str) -> Result<TraceSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut summary = TraceSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut stack: Vec<(String, usize)> = Vec::new();
    for (i, line) in ndjson.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields = match parse_flat(line) {
            Ok(f) => f,
            Err(e) => {
                errors.push(format!("line {lineno}: {e}"));
                continue;
            }
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(JsonVal::Str(ev)) = get("ev") else {
            errors.push(format!("line {lineno}: missing or non-string \"ev\" field"));
            continue;
        };
        let ev = ev.clone();
        match get("seq").and_then(|v| match v {
            JsonVal::Num { text, int: true, neg: false } => text.parse::<u64>().ok(),
            _ => None,
        }) {
            None => errors.push(format!("line {lineno}: missing or non-u64 \"seq\" field")),
            Some(seq) => {
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        errors.push(format!(
                            "line {lineno}: seq {seq} does not increase (previous {prev})"
                        ));
                    }
                }
                last_seq = Some(seq);
            }
        }
        summary.events += 1;
        if ev == "span_open" || ev == "span_close" {
            let Some(JsonVal::Str(name)) = get("span") else {
                errors.push(format!("line {lineno}: {ev} without \"span\" name"));
                continue;
            };
            let name = name.clone();
            let what = format!("span \"{name}\"");
            match schema::find_span(&name) {
                None => {
                    errors.push(format!(
                        "line {lineno}: undeclared span \"{name}\" — declare it in \
                         crates/trace/src/schema.rs"
                    ));
                    continue;
                }
                Some(s) => check_fields(
                    &what,
                    &fields,
                    s.fields,
                    schema::RESERVED_SPAN_FIELDS,
                    lineno,
                    &mut errors,
                ),
            }
            if ev == "span_open" {
                stack.push((name, lineno));
            } else {
                if !matches!(get("elapsed_ns"), Some(JsonVal::Num { int: true, neg: false, .. })) {
                    errors.push(format!("line {lineno}: span_close without u64 \"elapsed_ns\""));
                }
                match stack.pop() {
                    Some((open, _)) if open == name => {
                        summary.spans += 1;
                        if name == "cpals.iter" {
                            summary.iterations += 1;
                        }
                    }
                    Some((open, open_line)) => errors.push(format!(
                        "line {lineno}: span_close '{name}' does not match open \
                         '{open}' from line {open_line}"
                    )),
                    None => {
                        errors.push(format!("line {lineno}: span_close '{name}' with no open span"))
                    }
                }
            }
        } else {
            match schema::find_event(&ev) {
                None => errors.push(format!(
                    "line {lineno}: undeclared event kind \"{ev}\" — declare it in \
                     crates/trace/src/schema.rs"
                )),
                Some(e) => {
                    check_fields(
                        &format!("event \"{ev}\""),
                        &fields,
                        e.fields,
                        schema::RESERVED_EVENT_FIELDS,
                        lineno,
                        &mut errors,
                    );
                    if ev == "planner.decision" {
                        summary.decisions += 1;
                    }
                }
            }
        }
    }
    for (name, open_line) in &stack {
        errors.push(format!("span '{name}' opened at line {open_line} is never closed"));
    }
    if summary.events == 0 {
        errors.push("trace contains no events".to_string());
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_open(seq: u64) -> String {
        format!(
            "{{\"ev\": \"span_open\", \"seq\": {seq}, \"span\": \"cpals.run\", \
             \"backend\": \"coo\", \"rank\": 4, \"max_iters\": 10, \"ndim\": 3, \"nnz\": 500}}"
        )
    }

    fn run_close(seq: u64) -> String {
        format!(
            "{{\"ev\": \"span_close\", \"seq\": {seq}, \"span\": \"cpals.run\", \
             \"backend\": \"coo\", \"rank\": 4, \"max_iters\": 10, \"ndim\": 3, \"nnz\": 500, \
             \"elapsed_ns\": 99}}"
        )
    }

    fn stage(seq: u64, extra: &str) -> String {
        format!(
            "{{\"ev\": \"stage\", \"seq\": {seq}, \"iter\": 0, \"stage\": \"mttkrp\", \
             \"elapsed_ns\": 42{extra}}}"
        )
    }

    #[test]
    fn valid_trace_summarizes() {
        let trace = [
            run_open(0),
            "{\"ev\": \"span_open\", \"seq\": 1, \"span\": \"cpals.iter\", \"iter\": 0}".into(),
            "{\"ev\": \"planner.decision\", \"seq\": 2, \"label\": \"bdt\", \
             \"dispatch\": \"csf\", \"calibrated\": false, \"threads\": 8, \"candidates\": 12, \
             \"estimator_evals\": 40, \"predicted_ns\": 1.500000e6, \
             \"csf_predicted_ns\": 1.500000e6, \"coo_predicted_ns\": 2.000000e6}"
                .into(),
            stage(3, ", \"mode\": 1"),
            "{\"ev\": \"span_close\", \"seq\": 4, \"span\": \"cpals.iter\", \"iter\": 0, \
             \"elapsed_ns\": 55}"
                .into(),
            run_close(5),
        ]
        .join("\n");
        let s = validate(&trace).expect("valid trace");
        assert_eq!(s, TraceSummary { events: 6, spans: 2, iterations: 1, decisions: 1 });
    }

    #[test]
    fn rejects_non_monotone_seq() {
        let trace = [stage(5, ""), stage(5, "")].join("\n");
        let errs = validate(&trace).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("does not increase")), "{errs:?}");
    }

    #[test]
    fn rejects_mismatched_and_unclosed_spans() {
        let trace = [
            run_open(0),
            "{\"ev\": \"span_open\", \"seq\": 1, \"span\": \"cpals.iter\", \"iter\": 0}".into(),
            run_close(2),
        ]
        .join("\n");
        let errs = validate(&trace).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("does not match open 'cpals.iter'")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");
    }

    #[test]
    fn rejects_undeclared_event_kinds_and_spans() {
        let errs = validate("{\"ev\": \"no.such.kind\", \"seq\": 0}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("undeclared event kind")), "{errs:?}");
        let errs = validate("{\"ev\": \"span_open\", \"seq\": 0, \"span\": \"nope\"}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("undeclared span")), "{errs:?}");
    }

    #[test]
    fn rejects_missing_and_undeclared_fields() {
        // `stage` without its required `elapsed_ns`.
        let errs = validate("{\"ev\": \"stage\", \"seq\": 0, \"iter\": 0, \"stage\": \"mttkrp\"}")
            .unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("missing required field \"elapsed_ns\"")),
            "{errs:?}"
        );
        // A field the registry never declared.
        let errs = validate(&stage(0, ", \"bogus\": 1")).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("undeclared field \"bogus\"")), "{errs:?}");
    }

    #[test]
    fn rejects_wrongly_shaped_values() {
        // `iter` declared u64, emitted as a string.
        let errs = validate(
            "{\"ev\": \"stage\", \"seq\": 0, \"iter\": \"zero\", \"stage\": \"m\", \
             \"elapsed_ns\": 1}",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("\"iter\" is not a u64")), "{errs:?}");
    }

    #[test]
    fn f64_fields_accept_scientific_and_nonfinite_strings() {
        // The emitter renders f64 as `{v:.6e}` and degrades non-finite
        // values to strings; both shapes must validate.
        let trace = "{\"ev\": \"drift.check\", \"seq\": 0, \"predicted_ns\": 1.000000e6, \
                     \"measured_ns\": \"NaN\", \"factor\": 1.500000e0}";
        assert!(validate(trace).is_ok());
    }

    #[test]
    fn i64_fields_accept_negative_sentinels() {
        let trace = "{\"ev\": \"recovery\", \"seq\": 0, \"iter\": 2, \"mode\": -1, \
                     \"kind\": \"nonfinite\", \"action\": \"reseed\", \"recovery_ns\": 800}";
        assert!(validate(trace).is_ok());
    }

    #[test]
    fn rejects_malformed_lines_and_empty_traces() {
        let errs = validate("not json\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a JSON object")), "{errs:?}");
        let errs = validate("").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no events")), "{errs:?}");
        let errs = validate("{\"noev\": 1}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("\"ev\"")), "{errs:?}");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let trace = format!("{}\n\n{}\n", stage(0, ""), stage(1, ""));
        let s = validate(&trace).expect("valid");
        assert_eq!(s.events, 2);
    }
}
