//! NDJSON trace validation for `cargo xtask trace-check`.
//!
//! Validates a trace file captured with `adatm --trace <path>` against
//! the schema `adatm-trace` emits: every line is a flat JSON object with
//! an `ev` kind and a `seq` number, sequence numbers strictly increase,
//! and `span_open`/`span_close` events pair up and nest properly (every
//! opened span — including every `cpals.iter` iteration span — is closed
//! before its parent). Pure functions over strings, unit-tested without
//! the filesystem — same philosophy as [`crate::bench`] and
//! [`crate::lints`].

/// Extracts a `"name": "value"` string field from an NDJSON line.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts a `"name": 123` numeric field from an NDJSON line.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// What a valid trace contained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total event lines.
    pub events: usize,
    /// Completed span pairs.
    pub spans: usize,
    /// `cpals.iter` spans (outer CP-ALS iterations traced).
    pub iterations: usize,
    /// `planner.decision` events.
    pub decisions: usize,
}

/// Validates `ndjson` and returns a summary, or every violation found.
pub fn validate(ndjson: &str) -> Result<TraceSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut summary = TraceSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut stack: Vec<(String, usize)> = Vec::new();
    for (i, line) in ndjson.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            errors.push(format!("line {lineno}: not a JSON object: {line}"));
            continue;
        }
        let Some(ev) = field_str(line, "ev") else {
            errors.push(format!("line {lineno}: missing \"ev\" field"));
            continue;
        };
        let Some(seq) = field_u64(line, "seq") else {
            errors.push(format!("line {lineno}: missing \"seq\" field"));
            continue;
        };
        if let Some(prev) = last_seq {
            if seq <= prev {
                errors
                    .push(format!("line {lineno}: seq {seq} does not increase (previous {prev})"));
            }
        }
        last_seq = Some(seq);
        summary.events += 1;
        match ev {
            "span_open" => {
                let Some(name) = field_str(line, "span") else {
                    errors.push(format!("line {lineno}: span_open without \"span\" name"));
                    continue;
                };
                stack.push((name.to_string(), lineno));
            }
            "span_close" => {
                let Some(name) = field_str(line, "span") else {
                    errors.push(format!("line {lineno}: span_close without \"span\" name"));
                    continue;
                };
                if field_u64(line, "elapsed_ns").is_none() {
                    errors.push(format!("line {lineno}: span_close without \"elapsed_ns\""));
                }
                match stack.pop() {
                    Some((open, _)) if open == name => {
                        summary.spans += 1;
                        if name == "cpals.iter" {
                            summary.iterations += 1;
                        }
                    }
                    Some((open, open_line)) => errors.push(format!(
                        "line {lineno}: span_close '{name}' does not match open \
                         '{open}' from line {open_line}"
                    )),
                    None => {
                        errors.push(format!("line {lineno}: span_close '{name}' with no open span"))
                    }
                }
            }
            "planner.decision" => summary.decisions += 1,
            _ => {}
        }
    }
    for (name, open_line) in &stack {
        errors.push(format!("span '{name}' opened at line {open_line} is never closed"));
    }
    if summary.events == 0 {
        errors.push("trace contains no events".to_string());
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, body: &str) -> String {
        format!("{{\"ev\": {body}, \"seq\": {seq}}}")
    }

    #[test]
    fn valid_trace_summarizes() {
        let trace = [
            line(0, "\"span_open\", \"span\": \"cpals.run\""),
            line(1, "\"span_open\", \"span\": \"cpals.iter\", \"iter\": 0"),
            line(2, "\"planner.decision\", \"label\": \"bdt\""),
            line(3, "\"span_close\", \"span\": \"cpals.iter\", \"elapsed_ns\": 42"),
            line(4, "\"span_close\", \"span\": \"cpals.run\", \"elapsed_ns\": 99"),
        ]
        .join("\n");
        let s = validate(&trace).expect("valid trace");
        assert_eq!(s, TraceSummary { events: 5, spans: 2, iterations: 1, decisions: 1 });
    }

    #[test]
    fn rejects_non_monotone_seq() {
        let trace = [line(5, "\"a\""), line(5, "\"b\"")].join("\n");
        let errs = validate(&trace).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("does not increase")), "{errs:?}");
    }

    #[test]
    fn rejects_mismatched_and_unclosed_spans() {
        let trace = [
            line(0, "\"span_open\", \"span\": \"outer\""),
            line(1, "\"span_open\", \"span\": \"inner\""),
            line(2, "\"span_close\", \"span\": \"outer\", \"elapsed_ns\": 1"),
        ]
        .join("\n");
        let errs = validate(&trace).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("does not match open 'inner'")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");
    }

    #[test]
    fn rejects_malformed_lines_and_empty_traces() {
        let errs = validate("not json\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a JSON object")), "{errs:?}");
        let errs = validate("").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no events")), "{errs:?}");
        let errs = validate("{\"noev\": 1}").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing \"ev\"")), "{errs:?}");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let trace = format!("{}\n\n{}\n", line(0, "\"a\""), line(1, "\"b\""));
        let s = validate(&trace).expect("valid");
        assert_eq!(s.events, 2);
    }
}
