//! Snapshot parsing and comparison for `cargo xtask bench`.
//!
//! The bench driver (`crates/bench/src/bin/bench_kernels.rs`) writes a
//! flat, hand-serialized `BENCH_<date>.json`; this module reads it back
//! with an equally small line-oriented parser (the workspace is offline,
//! so no serde) and diffs two snapshots with a configurable tolerance.
//! Pure functions over strings, unit-tested without touching the
//! filesystem — same philosophy as [`crate::lints`].

/// One measurement row from a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Identity: `kernel/backend/tensor/threads`.
    pub key: String,
    /// Best-of-reps wall time per call.
    pub ns_per_call: u64,
}

/// Extracts a `"name": "value"` string field from a JSON line.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts a `"name": 123` numeric field from a JSON line.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses every record row of a snapshot. Unparseable lines are skipped
/// (a snapshot from a newer schema should degrade, not abort the lint).
pub fn parse_records(json: &str) -> Vec<BenchRecord> {
    json.lines()
        .filter_map(|line| {
            let kernel = field_str(line, "kernel")?;
            let backend = field_str(line, "backend")?;
            let tensor = field_str(line, "tensor")?;
            let threads = field_u64(line, "threads")?;
            let ns = field_u64(line, "ns_per_call")?;
            Some(BenchRecord {
                key: format!("{kernel}/{backend}/{tensor}/t{threads}"),
                ns_per_call: ns,
            })
        })
        .collect()
}

/// Whether a snapshot was taken in smoke mode (tiny sizes — never
/// comparable against a full run).
pub fn parse_smoke(json: &str) -> bool {
    json.lines().any(|l| l.contains("\"smoke\": true"))
}

/// The headline `coo_sched_speedup` summary figure, if present.
pub fn parse_speedup(json: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains("coo_sched_speedup"))?;
    let tag = "\"coo_sched_speedup\": ";
    let start = line.find(tag)? + tag.len();
    let num: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    num.parse().ok()
}

/// A collision-free default snapshot name for `date`: `BENCH_<date>.json`
/// when free, otherwise `BENCH_<date>.2.json`, `.3.json`, ... — a second
/// run on the same day must not silently overwrite the morning's
/// baseline (the regression diff would then compare the run to itself).
pub fn snapshot_name(date: &str, taken: &[String]) -> String {
    let plain = format!("BENCH_{date}.json");
    if !taken.contains(&plain) {
        return plain;
    }
    for n in 2.. {
        let candidate = format!("BENCH_{date}.{n}.json");
        if !taken.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!("the counter loop always finds a free name")
}

/// The most recently *written* snapshot among `(name, mtime_seconds)`
/// pairs — by modification time, not filename sort: suffixed same-day
/// names (`BENCH_d.2.json`) sort lexicographically *before* `BENCH_d.json`,
/// so a name sort would diff against the wrong baseline. Ties break to
/// the lexicographically larger name for determinism.
pub fn latest_by_mtime(entries: &[(String, u64)]) -> Option<String> {
    entries
        .iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
        .map(|(name, _)| name.clone())
}

/// Compares two snapshots: every key present in both must not have
/// slowed down by more than `tolerance_pct` percent. Returns one message
/// per regression (empty = pass).
pub fn compare(old: &[BenchRecord], new: &[BenchRecord], tolerance_pct: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    for n in new {
        let Some(o) = old.iter().find(|o| o.key == n.key) else { continue };
        if o.ns_per_call == 0 {
            continue;
        }
        let ratio = n.ns_per_call as f64 / o.ns_per_call as f64;
        if ratio > 1.0 + tolerance_pct / 100.0 {
            regressions.push(format!(
                "{}: {} ns -> {} ns ({:+.1}%, tolerance {:.0}%)",
                n.key,
                o.ns_per_call,
                n.ns_per_call,
                (ratio - 1.0) * 100.0,
                tolerance_pct
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": 1,
  "date": "2026-08-07",
  "smoke": false,
  "threads": 8,
  "summary": { "coo_sched_speedup": 1.523 },
  "records": [
    { "kernel": "mttkrp", "backend": "coo-sched-m0", "tensor": "deli4d", "threads": 8, "ns_per_call": 1000, "allocs_per_call": 34 },
    { "kernel": "alloc-gate", "backend": "coo-sched-seq", "tensor": "deli4d", "threads": 1, "ns_per_call": 900, "allocs_per_call": 0 }
  ]
}"#;

    #[test]
    fn parses_records_and_summary() {
        let recs = parse_records(SNAPSHOT);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].key, "mttkrp/coo-sched-m0/deli4d/t8");
        assert_eq!(recs[0].ns_per_call, 1000);
        assert!(!parse_smoke(SNAPSHOT));
        assert_eq!(parse_speedup(SNAPSHOT), Some(1.523));
    }

    #[test]
    fn smoke_flag_detected() {
        assert!(parse_smoke("{\n  \"smoke\": true,\n}"));
    }

    #[test]
    fn compare_flags_only_out_of_tolerance_keys() {
        let old = parse_records(SNAPSHOT);
        let new = vec![
            BenchRecord { key: "mttkrp/coo-sched-m0/deli4d/t8".into(), ns_per_call: 1100 },
            BenchRecord { key: "alloc-gate/coo-sched-seq/deli4d/t1".into(), ns_per_call: 2000 },
            BenchRecord { key: "brand/new/key/t8".into(), ns_per_call: 1 },
        ];
        // 10% slower passes at 25% tolerance; 122% slower fails; new keys
        // are never regressions.
        let msgs = compare(&old, &new, 25.0);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("alloc-gate/coo-sched-seq"), "{}", msgs[0]);
    }

    #[test]
    fn compare_passes_when_faster() {
        let old = parse_records(SNAPSHOT);
        let new = vec![BenchRecord { key: "mttkrp/coo-sched-m0/deli4d/t8".into(), ns_per_call: 1 }];
        assert!(compare(&old, &new, 0.0).is_empty());
    }

    #[test]
    fn snapshot_name_avoids_same_day_collisions() {
        let none: Vec<String> = vec![];
        assert_eq!(snapshot_name("2026-08-07", &none), "BENCH_2026-08-07.json");
        let one = vec!["BENCH_2026-08-07.json".to_string()];
        assert_eq!(snapshot_name("2026-08-07", &one), "BENCH_2026-08-07.2.json");
        let two = vec!["BENCH_2026-08-07.json".to_string(), "BENCH_2026-08-07.2.json".to_string()];
        assert_eq!(snapshot_name("2026-08-07", &two), "BENCH_2026-08-07.3.json");
        // A different day never collides with today's files.
        assert_eq!(snapshot_name("2026-08-08", &two), "BENCH_2026-08-08.json");
    }

    #[test]
    fn latest_by_mtime_beats_filename_sort() {
        // The suffixed same-day rerun sorts lexicographically BEFORE the
        // plain name but was written later; mtime must win.
        let entries = vec![
            ("BENCH_2026-08-07.json".to_string(), 100),
            ("BENCH_2026-08-07.2.json".to_string(), 200),
        ];
        assert_eq!(latest_by_mtime(&entries).as_deref(), Some("BENCH_2026-08-07.2.json"));
        // Ties break to the larger name, deterministically.
        let tied = vec![("BENCH_a.json".to_string(), 5), ("BENCH_b.json".to_string(), 5)];
        assert_eq!(latest_by_mtime(&tied).as_deref(), Some("BENCH_b.json"));
        assert_eq!(latest_by_mtime(&[]), None);
    }
}
