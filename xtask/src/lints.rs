//! Source-scan lints: pure functions over `(file name, source text)` so
//! every rule is unit-testable on fixture strings without touching the
//! filesystem or spawning `cargo`.
//!
//! Three rules:
//!
//! * [`scan_panicky_calls`] — no `.unwrap()` / `.expect(` in non-test
//!   kernel code. The kernel crates surface failures as typed errors
//!   (`TensorError`, `DtreeError`); a stray unwrap turns a reportable
//!   condition into an anonymous panic deep inside a parallel region.
//! * [`scan_forbid_unsafe`] — every crate root must carry
//!   `#![forbid(unsafe_code)]`, so the workspace-level `unsafe_code =
//!   "deny"` cannot be overridden locally.
//! * [`scan_hot_path_indexing`] — advisory count of direct slice
//!   indexing in files tagged `// lint: hot-path`, where a bounds panic
//!   would abort a rayon worker.

/// One finding of a source-scan rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (as handed to the scan).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Strips a line comment (`//` to end of line) unless the `//` sits
/// inside a string literal. Char literals and raw strings are rare enough
/// in this workspace that double-quote tracking suffices.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped char
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Replaces the contents of string literals with spaces so substring
/// matching cannot fire on text inside a `"..."`.
fn blank_strings(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut in_string = false;
    let mut chars = code.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_string => {
                out.push(' ');
                if chars.next().is_some() {
                    out.push(' ');
                }
            }
            '"' => {
                in_string = !in_string;
                out.push('"');
            }
            _ if in_string => out.push(' '),
            _ => out.push(c),
        }
    }
    out
}

/// Net brace depth change of a (comment-stripped) line, ignoring braces
/// inside string literals.
fn brace_delta(code: &str) -> isize {
    let mut delta = 0isize;
    let mut in_string = false;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1,
            b'"' => in_string = !in_string,
            b'{' if !in_string => delta += 1,
            b'}' if !in_string => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// Marks the lines of `src` that belong to `#[cfg(test)]` items: the
/// attribute itself, any stacked attributes after it, and — for an item
/// with a brace-delimited body (`mod tests { ... }`) — everything up to
/// the matching closing brace.
fn test_region_mask(src: &str) -> Vec<bool> {
    let mut mask = Vec::new();
    let mut depth = 0isize; // > 0 while inside a cfg(test) item body
    let mut pending = false; // saw #[cfg(test)], item not yet opened
    for line in src.lines() {
        let code = strip_comment(line);
        let trimmed = code.trim();
        if depth > 0 {
            mask.push(true);
            depth += brace_delta(code);
            continue;
        }
        if pending {
            mask.push(true);
            if trimmed.starts_with("#[") || trimmed.is_empty() {
                continue; // stacked attribute; still pending
            }
            let delta = brace_delta(code);
            if delta > 0 {
                depth = delta;
            }
            // Single-line item (`mod t;`, `use ...;`, one-line fn): done.
            pending = false;
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            pending = true;
            mask.push(true);
            continue;
        }
        mask.push(false);
    }
    mask
}

/// Flags `.unwrap()` and `.expect(` in the non-test portion of `src`.
pub fn scan_panicky_calls(file: &str, src: &str) -> Vec<Finding> {
    let mask = test_region_mask(src);
    let mut findings = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if mask[i] {
            continue;
        }
        let code = blank_strings(strip_comment(line));
        for needle in [".unwrap()", ".expect("] {
            if code.contains(needle) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{needle}` in kernel code — return a typed error or use an \
                         explicitly-justified panic (`unwrap_or_else` + `panic!`)"
                    ),
                });
            }
        }
    }
    findings
}

/// Checks that a crate root declares `#![forbid(unsafe_code)]`.
pub fn scan_forbid_unsafe(file: &str, src: &str) -> Option<Finding> {
    if src.lines().map(strip_comment).any(|l| l.trim() == "#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Finding {
            file: file.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// Whether the file opts into the hot-path advisory scan (a
/// `// lint: hot-path` tag within the first few lines).
pub fn is_hot_path_tagged(src: &str) -> bool {
    src.lines().take(10).any(|l| l.contains("lint: hot-path"))
}

/// Advisory: counts direct (unchecked) slice/array indexing expressions
/// `expr[...]` in non-test code. Not a failure — indexing after an
/// explicit validation pass is the kernels' deliberate style — but the
/// count is reported so growth is visible in review.
pub fn scan_hot_path_indexing(src: &str) -> usize {
    let mask = test_region_mask(src);
    let mut count = 0;
    for (i, line) in src.lines().enumerate() {
        if mask[i] {
            continue;
        }
        let code = strip_comment(line);
        if code.trim_start().starts_with("#[") {
            continue; // attribute, e.g. #[cfg(feature = "x")]
        }
        let bytes = code.as_bytes();
        let mut in_string = false;
        let mut prev_sig = b' ';
        let mut j = 0;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' if in_string => j += 1,
                b'"' => in_string = !in_string,
                // `a[`, `a()[`, `a][` index; `&[`, `(&[`, `: [` do not.
                b'[' if !in_string
                    && (prev_sig.is_ascii_alphanumeric()
                        || prev_sig == b'_'
                        || prev_sig == b')'
                        || prev_sig == b']') =>
                {
                    count += 1;
                }
                _ => {}
            }
            if !in_string && !bytes[j].is_ascii_whitespace() {
                prev_sig = bytes[j];
            }
            j += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_kernel_code_is_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = scan_panicky_calls("kernel.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains(".unwrap()"));
    }

    #[test]
    fn expect_in_kernel_code_is_flagged() {
        let src = "fn g(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
        let f = scan_panicky_calls("kernel.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains(".expect("));
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_allowed() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        assert!(scan_panicky_calls("kernel.rs", src).is_empty());
    }

    #[test]
    fn unwrap_after_test_mod_closes_is_flagged_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\npub fn f() \
                   {\n    Some(1).unwrap();\n}\n";
        let f = scan_panicky_calls("kernel.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn unwrap_in_comments_and_strings_is_ignored() {
        let src = "// calls .unwrap() internally\nfn f() -> &'static str {\n    \
                   \"not .unwrap() either\"\n}\n";
        assert!(scan_panicky_calls("kernel.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n";
        assert!(scan_panicky_calls("kernel.rs", src).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_is_flagged() {
        let src = "//! A crate.\npub fn f() {}\n";
        let f = scan_forbid_unsafe("lib.rs", src).expect("must be flagged");
        assert!(f.message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn present_forbid_unsafe_passes() {
        let src = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(scan_forbid_unsafe("lib.rs", src), None);
    }

    #[test]
    fn hot_path_tag_is_detected_near_top_only() {
        assert!(is_hot_path_tagged("//! Kernels.\n// lint: hot-path\n"));
        let far = format!("{}// lint: hot-path\n", "//\n".repeat(20));
        assert!(!is_hot_path_tagged(&far));
    }

    #[test]
    fn indexing_advisory_counts_direct_indexing_only() {
        let src = "fn f(a: &[u32], i: usize) -> u32 {\n    let s: &[u32] = &[1, 2];\n    \
                   a[i] + s[0]\n}\n";
        assert_eq!(scan_hot_path_indexing(src), 2);
    }

    #[test]
    fn indexing_advisory_skips_tests_comments_attributes() {
        let src = "#[cfg(feature = \"audit\")]\n// a[0] in a comment\nfn f() {}\n\n\
                   #[cfg(test)]\nmod tests {\n    fn t(a: &[u32]) -> u32 { a[0] }\n}\n";
        assert_eq!(scan_hot_path_indexing(src), 0);
    }
}
