//! Compatibility shim for the old regex/line source scans.
//!
//! The rules that used to live here as hand-rolled line scans —
//! panicky-call detection in kernel crates, crate-root
//! `#![forbid(unsafe_code)]`, and the hot-path indexing advisory — are
//! now structural passes over a token-tree model in `adatm-analyze`
//! (see `crates/analyze`), driven by [`crate::analyze`]. The engine
//! supersedes the scans on every axis: function-level allowances with
//! recorded reasons instead of file-level tags, transitive hot-set
//! propagation instead of a per-file marker comment, and string/comment
//! handling done once in a real lexer instead of per rule.
//!
//! This module keeps regression tests pinning the old scanner's
//! semantics onto the engine, so parity holds as both evolve.

#[cfg(test)]
mod tests {
    use adatm_analyze::config::CrateConfig;
    use adatm_analyze::{analyze_crate, build_model, check_forbid_unsafe, hot};

    fn kernel_model(src: &str) -> adatm_analyze::CrateModel {
        let config = CrateConfig { kernel: true, ..CrateConfig::default() };
        build_model("fixture", config, &[("kernel.rs".to_string(), src.to_string())])
    }

    #[test]
    fn unwrap_in_kernel_code_is_still_flagged() {
        let out =
            analyze_crate(&kernel_model("pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n"));
        let f = out.findings.iter().find(|f| f.lint == "panic").expect("panic finding");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("unwrap"), "{}", f.message);
    }

    #[test]
    fn unwrap_inside_cfg_test_mod_is_still_allowed() {
        let out = analyze_crate(&kernel_model(
            "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
             Some(1).unwrap();\n    }\n}\n",
        ));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_in_comments_and_strings_is_still_ignored() {
        let out = analyze_crate(&kernel_model(
            "// calls .unwrap() internally\npub fn f() -> &'static str {\n    \
             \"not .unwrap() either\"\n}\n",
        ));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn missing_forbid_unsafe_is_still_flagged() {
        let f = check_forbid_unsafe("lib.rs", "//! A crate.\npub fn f() {}\n")
            .expect("must be flagged");
        assert!(f.message.contains("forbid(unsafe_code)"));
        let ok = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(check_forbid_unsafe("lib.rs", ok).is_none());
    }

    #[test]
    fn indexing_counts_match_the_old_advisory_semantics() {
        // `a[i]` and `s[0]` index; the `&[1, 2]` literal does not.
        let src = "#[adatm::hot]\npub fn f(a: &[u32], i: usize) -> u32 {\n    \
                   let s: &[u32] = &[1, 2];\n    a[i] + s[0]\n}\n";
        let model = kernel_model(src);
        let (index, _alloc) = hot::raw_counts(&model);
        assert_eq!(index, vec![("kernel.rs::f".to_string(), 2)]);
    }
}
