//! `cargo xtask analyze` — the workspace driver for the structural
//! analysis engine in `crates/analyze` (`adatm-analyze`).
//!
//! The engine itself is pure (models in, findings out); this module owns
//! everything that touches the real workspace:
//!
//! * **Discovery & loading** — workspace members via `cargo metadata`
//!   (with a manifest-walk fallback), each crate's sources and its
//!   `analyze.toml`.
//! * **The static passes** — hot-path allocation, hot-path indexing,
//!   kernel panic-freedom, and trace-schema conformance, plus the
//!   `#![forbid(unsafe_code)]` crate-root check carried over from the
//!   old scanner.
//! * **Docs drift** — the README's trace-schema table must equal
//!   [`adatm_trace::schema::markdown_table`]; `--fix-docs` rewrites it
//!   in place instead of failing.
//! * **`--bless`** — regenerates every crate's `analyze.toml` allowance
//!   maps from the current raw finding counts, preserving the reasons of
//!   keys that already exist (new keys get a TODO reason that review is
//!   expected to replace).
//! * **The prover** — the exhaustive schedule-disjointness model check
//!   (`--quick` shrinks the universe for local iteration).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use adatm_analyze::config::{Allowance, CrateConfig};
use adatm_analyze::discover::{rust_sources, workspace_crates, WorkspaceCrate};
use adatm_analyze::{
    analyze_crate, build_model, check_forbid_unsafe, hot, panics, prover, CrateModel, Finding,
    LintOutcome,
};

/// Flags of `cargo xtask analyze`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Regenerate `analyze.toml` allowances from current raw counts.
    pub bless: bool,
    /// Rewrite the README trace-schema table instead of checking it.
    pub fix_docs: bool,
    /// Use the small prover universe (fast local iteration; CI runs the
    /// full one).
    pub quick: bool,
}

/// One workspace crate, loaded and parsed.
struct Loaded {
    ws: WorkspaceCrate,
    model: CrateModel,
}

fn display_rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

/// Loads every workspace crate's `analyze.toml` and sources into models.
fn load_models(root: &Path) -> Result<Vec<Loaded>, String> {
    let crates = workspace_crates(root).map_err(|e| format!("workspace discovery failed: {e}"))?;
    let mut out = Vec::new();
    for ws in crates {
        let cfg_path = ws.config_path();
        let config = match std::fs::read_to_string(&cfg_path) {
            Ok(text) => CrateConfig::parse(&text).map_err(|e| {
                format!("{}:{}: {}", display_rel(&cfg_path, root), e.line, e.message)
            })?,
            Err(_) => CrateConfig::default(),
        };
        let mut files = Vec::new();
        for path in rust_sources(&ws.src_dir) {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", display_rel(&path, root)))?;
            files.push((display_rel(&path, root), src));
        }
        let model = build_model(&ws.name, config, &files);
        out.push(Loaded { ws, model });
    }
    Ok(out)
}

/// Runs the per-crate lint passes plus the crate-root
/// `#![forbid(unsafe_code)]` check.
fn lint_outcome(root: &Path, loaded: &[Loaded]) -> LintOutcome {
    let mut out = LintOutcome::default();
    for l in loaded {
        out.merge(analyze_crate(&l.model));
        for entry in ["lib.rs", "main.rs"] {
            let p = l.ws.src_dir.join(entry);
            let Ok(src) = std::fs::read_to_string(&p) else { continue };
            if let Some(f) = check_forbid_unsafe(&display_rel(&p, root), &src) {
                out.findings.push(f);
            }
        }
    }
    out
}

const SCHEMA_BEGIN: &str = "<!-- trace-schema:begin -->";
const SCHEMA_END: &str = "<!-- trace-schema:end -->";

/// Splices `table` between the README's trace-schema markers, returning
/// the updated text, or `None` if the markers are missing or misordered.
pub fn splice_schema_table(readme: &str, table: &str) -> Option<String> {
    let begin = readme.find(SCHEMA_BEGIN)? + SCHEMA_BEGIN.len();
    let end = begin + readme[begin..].find(SCHEMA_END)?;
    Some(format!("{}\n{}{}", &readme[..begin], table, &readme[end..]))
}

/// Checks (or, with `fix`, rewrites) the README's generated trace-schema
/// table against the declared registry.
fn check_docs(root: &Path, fix: bool, out: &mut LintOutcome) {
    let path = root.join("README.md");
    let readme = match std::fs::read_to_string(&path) {
        Ok(r) => r,
        Err(e) => {
            out.findings.push(Finding {
                lint: "docs",
                file: "README.md".into(),
                line: 1,
                message: format!("cannot read README.md: {e}"),
            });
            return;
        }
    };
    let table = adatm_trace::schema::markdown_table();
    match splice_schema_table(&readme, &table) {
        None => out.findings.push(Finding {
            lint: "docs",
            file: "README.md".into(),
            line: 1,
            message: format!(
                "README.md is missing the `{SCHEMA_BEGIN}` / `{SCHEMA_END}` markers \
                 around the trace-schema table"
            ),
        }),
        Some(fresh) if fresh == readme => {}
        Some(fresh) => {
            if fix {
                if let Err(e) = std::fs::write(&path, fresh) {
                    out.findings.push(Finding {
                        lint: "docs",
                        file: "README.md".into(),
                        line: 1,
                        message: format!("cannot rewrite README.md: {e}"),
                    });
                } else {
                    println!("xtask analyze: rewrote the README.md trace-schema table");
                }
            } else {
                out.findings.push(Finding {
                    lint: "docs",
                    file: "README.md".into(),
                    line: 1,
                    message: "trace-schema table does not match the registry in \
                              crates/trace/src/schema.rs — run `cargo xtask analyze --fix-docs`"
                        .into(),
                });
            }
        }
    }
}

/// Rebuilds an allowance map from raw counts, keeping the reasons of
/// keys that already exist.
fn regenerate(
    old: &BTreeMap<String, Allowance>,
    counts: Vec<(String, usize)>,
) -> BTreeMap<String, Allowance> {
    counts
        .into_iter()
        .map(|(key, sites)| {
            let reason = old
                .get(&key)
                .map_or_else(|| "TODO: justify this allowance".to_string(), |a| a.reason.clone());
            (key, Allowance { sites, reason })
        })
        .collect()
}

/// `--bless`: rewrites each crate's `analyze.toml` allowances from the
/// current raw counts. Crates with no `analyze.toml` and no findings are
/// left alone. Returns how many files were written.
fn bless(root: &Path, loaded: &[Loaded]) -> Result<usize, String> {
    let mut written = 0usize;
    for l in loaded {
        let (index, alloc) = hot::raw_counts(&l.model);
        let panic = panics::raw_counts(&l.model);
        let cfg_path = l.ws.config_path();
        if !cfg_path.is_file() && index.is_empty() && alloc.is_empty() && panic.is_empty() {
            continue;
        }
        let mut cfg = l.model.config.clone();
        cfg.allow_index = regenerate(&l.model.config.allow_index, index);
        cfg.allow_alloc = regenerate(&l.model.config.allow_alloc, alloc);
        cfg.allow_panic = regenerate(&l.model.config.allow_panic, panic);
        std::fs::write(&cfg_path, cfg.render())
            .map_err(|e| format!("{}: {e}", display_rel(&cfg_path, root)))?;
        println!("xtask analyze: blessed {}", display_rel(&cfg_path, root));
        written += 1;
    }
    Ok(written)
}

/// Runs the schedule-disjointness prover and reports its coverage.
fn run_prover(quick: bool, out: &mut LintOutcome) {
    let universe = if quick { prover::QUICK } else { prover::FULL };
    println!(
        "xtask analyze: proving schedule disjointness (universe: groups <= {}, weight <= {}) ...",
        universe.max_groups, universe.max_total
    );
    let t0 = Instant::now();
    let rep = prover::prove(universe);
    println!(
        "xtask analyze: prover verified {} mode schedules ({} with splits) and {} scatter \
         schedules in {:.2?}",
        rep.mode_builds,
        rep.mode_split_builds,
        rep.scatter_builds,
        t0.elapsed()
    );
    for f in &rep.failures {
        out.findings.push(Finding {
            lint: "prover",
            file: "crates/tensor/src/schedule.rs".into(),
            line: 1,
            message: f.clone(),
        });
    }
}

/// Prints an outcome; `true` when there are no findings.
fn report(out: &LintOutcome) -> bool {
    for w in &out.warnings {
        println!("xtask analyze: warning: {w}");
    }
    if out.findings.is_empty() {
        true
    } else {
        for f in &out.findings {
            eprintln!("xtask analyze: {f}");
        }
        eprintln!("xtask analyze: FAILED ({} finding(s))", out.findings.len());
        false
    }
}

/// The static passes only (no prover): the engine-backed successor of
/// the old `xtask lint` source scans. Returns `true` when clean.
pub fn run_static(root: &Path) -> bool {
    let loaded = match load_models(root) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return false;
        }
    };
    let nfns: usize = loaded.iter().map(|l| l.model.fns.len()).sum();
    println!(
        "xtask analyze: {} crates, {} functions (alloc/index/panic/schema passes)",
        loaded.len(),
        nfns
    );
    let mut out = lint_outcome(root, &loaded);
    check_docs(root, false, &mut out);
    let ok = report(&out);
    if ok {
        println!("xtask analyze: static passes clean");
    }
    ok
}

/// The full `cargo xtask analyze` command.
pub fn run(root: &Path, opts: Options) -> bool {
    let mut loaded = match load_models(root) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return false;
        }
    };
    let nfns: usize = loaded.iter().map(|l| l.model.fns.len()).sum();
    println!("xtask analyze: {} crates, {} functions", loaded.len(), nfns);
    if opts.bless {
        match bless(root, &loaded) {
            Ok(0) => println!("xtask analyze: bless: nothing to write"),
            Ok(_) => {
                // Allowances changed on disk; re-load so the passes below
                // verify the blessed state.
                loaded = match load_models(root) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("xtask analyze: {e}");
                        return false;
                    }
                };
            }
            Err(e) => {
                eprintln!("xtask analyze: bless failed: {e}");
                return false;
            }
        }
    }
    let mut out = lint_outcome(root, &loaded);
    check_docs(root, opts.fix_docs, &mut out);
    run_prover(opts.quick, &mut out);
    let ok = report(&out);
    if ok {
        println!("xtask analyze: all passes clean");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_replaces_only_the_marked_region() {
        let readme =
            "intro\n<!-- trace-schema:begin -->\nold table\n<!-- trace-schema:end -->\noutro\n";
        let got = splice_schema_table(readme, "new table\n").expect("markers present");
        assert_eq!(
            got,
            "intro\n<!-- trace-schema:begin -->\nnew table\n<!-- trace-schema:end -->\noutro\n"
        );
        // Idempotent: splicing the same table again changes nothing.
        assert_eq!(splice_schema_table(&got, "new table\n").as_deref(), Some(got.as_str()));
        assert_eq!(splice_schema_table("no markers", "t"), None);
    }

    #[test]
    fn regenerate_keeps_existing_reasons_and_updates_counts() {
        let mut old = BTreeMap::new();
        old.insert(
            "f.rs::g".to_string(),
            Allowance { sites: 9, reason: "bounds checked by caller".into() },
        );
        let fresh = regenerate(&old, vec![("f.rs::g".into(), 3), ("f.rs::h".into(), 1)]);
        assert_eq!(fresh["f.rs::g"].sites, 3);
        assert_eq!(fresh["f.rs::g"].reason, "bounds checked by caller");
        assert_eq!(fresh["f.rs::h"].sites, 1);
        assert!(fresh["f.rs::h"].reason.contains("TODO"));
        // Keys with zero findings drop out entirely (burn-down complete).
        assert!(!regenerate(&old, vec![]).contains_key("f.rs::g"));
    }
}
