//! Quickstart: decompose a sparse tensor in a few lines.
//!
//! Generates a 4-mode skewed sparse tensor, lets the model-driven planner
//! pick a memoization strategy, runs CP-ALS, and inspects the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adatm::tensor::gen::zipf_tensor;
use adatm::{decompose, CpAlsOptions};

fn main() {
    // A 4-mode sparse tensor with heavy-tailed index reuse, the regime
    // where memoized MTTKRP shines.
    let tensor = zipf_tensor(&[2_000, 10_000, 30_000, 5_000], 200_000, &[0.5, 0.9, 0.7, 1.0], 42);
    println!("tensor: order {}, dims {:?}, nnz {}", tensor.ndim(), tensor.dims(), tensor.nnz());

    // One call: plan the memoization strategy, then run rank-16 CP-ALS.
    let opts = CpAlsOptions::new(16).max_iters(20).tol(1e-5).seed(0);
    let result = decompose(&tensor, &opts).expect("decomposition failed");

    println!(
        "CP-ALS: {} iterations, fit {:.4}, converged: {}",
        result.iters,
        result.final_fit(),
        result.converged
    );
    println!(
        "time: mttkrp {:.3}s, dense {:.3}s, fit {:.3}s",
        result.timings.mttkrp.as_secs_f64(),
        result.timings.dense.as_secs_f64(),
        result.timings.fit.as_secs_f64()
    );
    // The model: lambda weights plus one normalized factor per mode.
    let model = &result.model;
    println!("rank {} model, lambda[0..4] = {:?}", model.rank(), &model.lambda[..4]);
    for (d, f) in model.factors.iter().enumerate() {
        println!("  factor {d}: {} x {}", f.nrows(), f.ncols());
    }
    // Predict a (held-in) entry.
    let coords = [0usize, 1, 2, 3];
    println!("model value at {:?}: {:.5}", coords, model.predict(&coords));
}
