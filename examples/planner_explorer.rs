//! Planner explorer: see the model-driven strategy selection at work.
//!
//! Builds two 6-mode tensors — one uniform (no index overlap, the
//! pessimistic extreme) and one heavily skewed — and prints the full
//! candidate table the planner evaluates for each: predicted flops,
//! predicted resident memory, and the chosen strategy. Then verifies the
//! prediction quality by actually timing the top candidates.
//!
//! ```text
//! cargo run --release --example planner_explorer
//! ```

use adatm::tensor::gen::{uniform_tensor, zipf_tensor};
use adatm::{CpAls, CpAlsOptions, DtreeBackend, NnzEstimator, Planner, SparseTensor};

fn explore(name: &str, tensor: &SparseTensor, rank: usize) {
    println!("\n=== {name}: dims {:?}, nnz {} ===", tensor.dims(), tensor.nnz());
    let plan =
        Planner::new(tensor, rank).estimator(NnzEstimator::Sampled { sample: 1 << 14 }).plan();
    println!(
        "{} candidates, {} estimator evaluations",
        plan.candidates.len(),
        plan.estimator_evals
    );
    println!(
        "  {:<20} {:>14} {:>14} {:>12} {:>6}  shape",
        "label", "pred flops/it", "traffic MiB/it", "resident MiB", "memo#"
    );
    for c in &plan.candidates {
        println!(
            "  {:<20} {:>14.3e} {:>14.1} {:>12.1} {:>6}  {}{}",
            c.label,
            c.cost.flops_per_iter,
            c.cost.traffic_bytes_per_iter / (1024.0 * 1024.0),
            c.cost.resident_bytes() / (1024.0 * 1024.0),
            c.cost.memo_count,
            c.shape,
            if c.shape == plan.shape { "   <== chosen" } else { "" }
        );
    }

    // Time the chosen strategy against the flat and BDT baselines.
    let solver = CpAls::new(CpAlsOptions::new(rank).max_iters(3).tol(0.0).seed(1));
    for (label, shape) in [
        ("chosen", plan.shape.clone()),
        ("flat", adatm::TreeShape::two_level(tensor.ndim())),
        ("bdt", adatm::TreeShape::balanced_binary(tensor.ndim())),
    ] {
        let mut backend = DtreeBackend::new(tensor, &shape, rank);
        let res = solver.run(tensor, &mut backend).expect("timing run failed");
        println!(
            "  measured {label:<8} mttkrp {:.4}s/iter",
            res.timings.mttkrp.as_secs_f64() / res.iters.max(1) as f64
        );
    }
}

fn main() {
    let rank = 16;
    let dims = vec![40_000usize; 6];
    let uniform = uniform_tensor(&dims, 150_000, 5);
    let skewed = zipf_tensor(&dims, 150_000, &[1.1; 6], 5);
    explore("uniform 6-mode (no overlap)", &uniform, rank);
    explore("zipf 6-mode (heavy overlap)", &skewed, rank);
}
