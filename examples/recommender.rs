//! Recommender-system scenario: factorize a (user x item x time) rating
//! tensor and use the factors to score unseen (user, item) pairs.
//!
//! This mirrors the Netflix-style workload of the paper's motivation: a
//! 3-mode tensor of ratings with a temporal mode. We synthesize ratings
//! from a hidden low-rank preference model plus noise, hold out a test
//! set, and compare two fits:
//!
//! * full-tensor CP-ALS over every MTTKRP backend (treating missing
//!   entries as zeros — right for count data, a backend-agreement demo
//!   here), and
//! * the completion solver, which fits *only the observed ratings* and is
//!   the correct model for recommendation; its held-out RMSE is what the
//!   top-N scoring uses.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use adatm::tensor::coo::Idx;
use adatm::tensor::gen::low_rank_tensor;
use adatm::{
    complete, decompose_with, CompletionOptions, CooBackend, CpAlsOptions, CsfBackend, DtreeBackend,
};
use adatm::{MttkrpBackend, SparseTensor};

fn main() {
    // Hidden preference structure: 4 latent taste groups.
    let dims = [3_000usize, 800, 50]; // users x items x weeks
    let truth = low_rank_tensor(&dims, 4, 120_000, 0.02, 2024);
    let full = &truth.tensor;

    // Hold out every 10th observation as a test set.
    let mut train_entries: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut test_entries: Vec<(Vec<usize>, f64)> = Vec::new();
    for k in 0..full.nnz() {
        let coords: Vec<usize> = (0..3).map(|d| full.mode_idx(d)[k] as usize).collect();
        let v = full.vals()[k];
        if k % 10 == 0 {
            test_entries.push((coords, v));
        } else {
            train_entries.push((coords, v));
        }
    }
    let train = SparseTensor::from_entries(dims.to_vec(), &train_entries);
    println!("train nnz {}, test nnz {}, dims {:?}", train.nnz(), test_entries.len(), dims);

    // Compare backends end-to-end on the same seed; all must produce
    // identical trajectories (they compute the same math).
    let opts = CpAlsOptions::new(4).max_iters(25).tol(1e-6).seed(7);
    let mut results = Vec::new();
    let mut coo = CooBackend::new(&train);
    results.push(("coo", decompose_with(&train, &opts, &mut coo).expect("coo run failed")));
    let mut csf = CsfBackend::new(&train);
    results.push(("splatt-csf", decompose_with(&train, &opts, &mut csf).expect("csf run failed")));
    let mut bdt = DtreeBackend::balanced_binary(&train, 4);
    let bdt_name = bdt.name();
    results.push((bdt_name, decompose_with(&train, &opts, &mut bdt).expect("bdt run failed")));

    for (name, res) in &results {
        println!(
            "{name:>10}: {} iters, train fit {:.4}, mttkrp {:.3}s",
            res.iters,
            res.final_fit(),
            res.timings.mttkrp.as_secs_f64()
        );
    }

    // Missing-as-unknown: fit only the observed ratings with the
    // completion solver, then score the held-out set.
    let comp =
        complete(&train, &CompletionOptions::new(4).max_iters(25).reg(1e-3).tol(1e-7).seed(7));
    let model = &comp.model;
    let mut se = 0.0;
    let mut baseline_se = 0.0;
    let mean: f64 = train.vals().iter().sum::<f64>() / train.nnz() as f64;
    for (coords, v) in &test_entries {
        let p = model.predict(coords);
        se += (p - v) * (p - v);
        baseline_se += (mean - v) * (mean - v);
    }
    let rmse = (se / test_entries.len() as f64).sqrt();
    let baseline = (baseline_se / test_entries.len() as f64).sqrt();
    println!(
        "completion ({} iters, train RMSE {:.4}): held-out RMSE {rmse:.4} vs mean-predictor {baseline:.4}",
        comp.iters,
        comp.final_rmse()
    );

    // Top-3 items for one user in one week, straight from the factors.
    let (user, week) = (42usize, 10usize);
    let mut scores: Vec<(Idx, f64)> = (0..dims[1] as Idx)
        .map(|item| (item, model.predict(&[user, item as usize, week])))
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top items for user {user} in week {week}: {:?}", &scores[..3.min(scores.len())]);
}
