//! Knowledge-base scenario: factorize a higher-order (entity x relation x
//! entity x provenance) tensor and read latent concept groupings out of
//! the factors — the NELL-style workload, extended to 4 modes, where the
//! memoization advantage of dimension trees becomes visible.
//!
//! Also demonstrates FROSTT `.tns` round-tripping: the tensor is written
//! to disk and read back before factorization, exercising the I/O path a
//! real dataset would take.
//!
//! ```text
//! cargo run --release --example knowledge_base
//! ```

use adatm::tensor::gen::zipf_tensor;
use adatm::tensor::io::{read_tns_file, write_tns_file};
use adatm::tensor::stats::TensorStats;
use adatm::{decompose_with, AdaptiveBackend, CpAlsOptions, DtreeBackend, MttkrpBackend};

fn main() {
    // subject-entity x relation x object-entity x source-corpus.
    let dims = [60_000usize, 120, 60_000, 40];
    // Entities and relations are heavy-tailed (a few hub entities and
    // frequent relations dominate), exactly the overlap structure that
    // collapses dimension-tree intermediates.
    let tensor = zipf_tensor(&dims, 250_000, &[0.9, 1.1, 0.9, 0.6], 7);

    // Round-trip through the FROSTT text format, as a downloaded dataset
    // would arrive.
    let path = std::env::temp_dir().join("adatm_kb_example.tns");
    write_tns_file(&tensor, &path).expect("write .tns");
    let tensor = read_tns_file(&path).expect("read .tns");
    let _ = std::fs::remove_file(&path);

    let stats = TensorStats::compute(&tensor);
    println!(
        "knowledge tensor: order {}, nnz {}, half-split collapse {:.2} | {:.2}",
        stats.order, stats.nnz, stats.half_split_collapse.0, stats.half_split_collapse.1
    );

    // Model-driven planning: inspect what the planner chose and why.
    let rank = 12;
    let mut adaptive = AdaptiveBackend::plan(&tensor, rank);
    {
        let plan = adaptive.memo_plan();
        println!("planner chose {} (of {} candidates):", plan.shape, plan.candidates.len());
        for c in plan.candidates.iter().take(4) {
            println!(
                "  {:<18} flops/iter {:>12.3e}  resident {:>8.1} MiB{}",
                c.label,
                c.cost.flops_per_iter,
                c.cost.resident_bytes() / (1024.0 * 1024.0),
                if c.shape == plan.shape { "  <- chosen" } else { "" }
            );
        }
    }

    let opts = CpAlsOptions::new(rank).max_iters(15).tol(1e-5).seed(3);
    let res = decompose_with(&tensor, &opts, &mut adaptive).expect("adaptive run failed");
    println!(
        "adaptive: {} iters, fit {:.4}, mttkrp {:.3}s",
        res.iters,
        res.final_fit(),
        res.timings.mttkrp.as_secs_f64()
    );

    // Reference run with the non-memoized flat tree, to show the gap.
    let mut flat = DtreeBackend::two_level(&tensor, rank);
    let flat_res = decompose_with(&tensor, &opts, &mut flat).expect("flat run failed");
    println!(
        "{}: {} iters, fit {:.4}, mttkrp {:.3}s ({:.2}x slower)",
        flat.name(),
        flat_res.iters,
        flat_res.final_fit(),
        flat_res.timings.mttkrp.as_secs_f64(),
        flat_res.timings.mttkrp.as_secs_f64() / res.timings.mttkrp.as_secs_f64().max(1e-12)
    );

    // Latent concepts: for each component, the strongest relations.
    let relations = &res.model.factors[1];
    for r in 0..3 {
        let mut weights: Vec<(usize, f64)> =
            (0..relations.nrows()).map(|i| (i, relations.get(i, r).abs())).collect();
        weights.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<usize> = weights.iter().take(3).map(|&(i, _)| i).collect();
        println!("component {r} (lambda {:.3}): top relations {:?}", res.model.lambda[r], top);
    }
}
