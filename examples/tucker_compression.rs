//! Tucker compression scenario: reduce a sparse multi-aspect dataset to a
//! small dense core plus orthonormal factor bases — the data-compression
//! use case of the Tucker decomposition, built on the same semi-sparse
//! TTM chains the CP machinery uses.
//!
//! ```text
//! cargo run --release --example tucker_compression
//! ```

use adatm::tensor::gen::zipf_tensor;
use adatm::{hooi, TuckerOptions};

fn main() {
    // A 4-mode measurement tensor: sensor x frequency x time x location.
    let dims = [5_000usize, 64, 2_000, 300];
    let tensor = zipf_tensor(&dims, 300_000, &[0.8, 0.3, 0.5, 0.7], 99);
    println!(
        "input: dims {:?}, nnz {}, storage {:.1} MiB",
        tensor.dims(),
        tensor.nnz(),
        tensor.storage_bytes() as f64 / (1024.0 * 1024.0)
    );

    let ranks = vec![8, 4, 8, 4];
    let res = hooi(&tensor, &TuckerOptions::new(ranks.clone()).max_iters(8).tol(1e-5).seed(1));
    println!(
        "HOOI: {} iterations, fit {:.4}, converged {}",
        res.iters,
        res.final_fit(),
        res.converged
    );

    // Compressed representation size: core + factors.
    let core_vals: usize = ranks.iter().product();
    let factor_vals: usize = dims.iter().zip(ranks.iter()).map(|(&d, &r)| d * r).sum();
    let compressed_bytes = (core_vals + factor_vals) * 8;
    println!(
        "compressed: core {}x{}x{}x{} + factors = {:.2} MiB ({:.1}x smaller)",
        ranks[0],
        ranks[1],
        ranks[2],
        ranks[3],
        compressed_bytes as f64 / (1024.0 * 1024.0),
        tensor.storage_bytes() as f64 / compressed_bytes as f64
    );

    // Energy captured per leading core slice of mode 0.
    let total = res.model.core_norm();
    println!(
        "core norm {:.4} (captures {:.1}% of tensor energy)",
        total,
        100.0 * (total / tensor.fro_norm()).powi(2)
    );

    // Reconstruct a few entries to show the model is usable pointwise.
    for k in [0usize, 1000, 200_000] {
        if k >= tensor.nnz() {
            continue;
        }
        let coords: Vec<usize> = (0..4).map(|d| tensor.mode_idx(d)[k] as usize).collect();
        println!(
            "  x{coords:?} = {:.4}, model = {:.4}",
            tensor.vals()[k],
            res.model.predict(&coords)
        );
    }
}
