#!/bin/sh
# Splices results/e*.txt into EXPERIMENTS.md at the <!-- EN --> markers.
# Idempotent: re-running replaces the previously spliced blocks.
set -e
src=EXPERIMENTS.md
tmp=$(mktemp)
awk '
  /^<!-- E[0-9]+ -->$/ {
    id = $2
    print
    file = "results/" tolower(id)
    # Map marker id to the harness output file.
    if (id == "E1") file = "results/e1_datasets.txt"
    else if (id == "E2") file = "results/e2_sequential.txt"
    else if (id == "E3") file = "results/e3_parallel.txt"
    else if (id == "E4") file = "results/e4_preprocess.txt"
    else if (id == "E5") file = "results/e5_memory.txt"
    else if (id == "E6") file = "results/e6_order_sweep.txt"
    else if (id == "E7") file = "results/e7_scaling.txt"
    else if (id == "E8") file = "results/e8_model.txt"
    else if (id == "E9") file = "results/e9_rank_sweep.txt"
    else if (id == "E10") file = "results/e10_dissect.txt"
    else if (id == "E11") file = "results/e11_skew.txt"
    else if (id == "E12") file = "results/e12_ttmv_ablation.txt"
    else if (id == "E13") file = "results/e13_estimators.txt"
    else if (id == "E14") file = "results/e14_budget.txt"
    print ""
    print "```text"
    while ((getline line < file) > 0) {
      if (line !~ /^#TSV/) print line
    }
    close(file)
    print "```"
    skip = 1
    next
  }
  /^## / { skip = 0 }
  skip && /^```/ { incode = !incode; next }
  skip && incode { next }
  skip && /^$/ { next }
  { if (!skip) print }
' "$src" > "$tmp"
mv "$tmp" "$src"
echo "spliced results into $src"
