#!/bin/sh
# Regenerates every experiment table into results/. Knobs: ADATM_SCALE,
# ADATM_ITERS, ADATM_RANK (see crates/bench/src/lib.rs).
set -x
export ADATM_SCALE="${ADATM_SCALE:-1.0}"
export ADATM_ITERS="${ADATM_ITERS:-3}"
export ADATM_RANK="${ADATM_RANK:-16}"
mkdir -p results
for e in e1_datasets e2_sequential e3_parallel e4_preprocess e5_memory \
         e6_order_sweep e7_scaling e8_model e9_rank_sweep e10_dissect \
         e11_skew e12_ttmv_ablation e13_estimators e14_budget; do
  ./target/release/$e > results/$e.txt 2>&1 || echo "FAILED: $e" >> results/errors.txt
done
echo DONE > results/.done
